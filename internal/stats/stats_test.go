package stats

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 2 {
		t.Fatalf("P50 = %g", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("percentile edge values wrong")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("P50 = %g", Percentile(xs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile nonzero")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("alg", "ratio")
	tb.Addf("greedy", 1.93333)
	tb.Add("exact")
	out := tb.String()
	if !strings.Contains(out, "| alg    | ratio |") {
		t.Fatalf("header misaligned:\n%s", out)
	}
	if !strings.Contains(out, "1.933") {
		t.Fatalf("float not formatted:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	// Markdown rule row present.
	if !strings.HasPrefix(lines[1], "| ---") {
		t.Fatalf("missing rule row:\n%s", out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.Add("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}
