// Package stats provides the small numeric summaries and plain-text
// table rendering used by the experiment harness (cmd/experiments) and
// the benchmark reports.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds the standard aggregate of a sample.
type Summary struct {
	N             int
	Mean, Min     float64
	Max, P50, P95 float64
}

// Summarize computes the aggregate of xs; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	return s
}

// Percentile returns the p-th percentile (nearest-rank on the sorted
// sample). The input must be sorted ascending.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Table renders aligned plain-text tables with a markdown-compatible
// header rule, the output format of EXPERIMENTS.md.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted values: each argument is rendered with
// %v except float64, which gets three significant decimals.
func (t *Table) Addf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3f", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Add(cells...)
}

// Render writes the table as markdown with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(t.Headers))
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
