// Allocation-free cache-hit support. The HTTP layer's fast path (see
// internal/server/fastpath.go) decodes a request on pooled buffers and
// probes the solution cache without queuing; the core-side halves of
// that handshake live here so the transport never touches the cache
// directly. Every method on this file's path is allocation-free on a
// hit — the zero-alloc guarantee is pinned by the server's
// TestFastSolveHitZeroAllocs.
package dispatch

import (
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/instance"
	"repro/internal/obs"
)

// Solver is one entry of the per-solver serving table: the interned
// name and spec for allocation-free lookup from raw request bytes,
// plus the pre-resolved per-solver metrics (nil without an obs sink).
type Solver struct {
	name     string
	spec     engine.Spec
	requests *obs.Counter
	latency  *obs.Histogram
}

// Name returns the interned solver name; assigning it to a request
// field does not retain the caller's byte slice.
func (s *Solver) Name() string { return s.name }

// Solution reports whether the solver is solution-kind (cacheable).
func (s *Solver) Solution() bool { return s.spec.Kind == engine.KindSolution }

// AcceptsParams reports whether every explicitly-set tuning parameter
// (nonzero counts as set) is one the solver consumes — the fast-path
// mirror of Validate's ValidateFlags check.
func (s *Solver) AcceptsParams(k int, budget int64, eps float64) bool {
	caps := s.spec.Caps
	return (k == 0 || caps.K) && (budget == 0 || caps.Budget) && (eps == 0 || caps.Eps)
}

// LookupSolver resolves a solver by the raw name bytes of a decoded
// request without allocating. Nil for names absent from the table
// (including solvers registered after New, which take the slow path).
func (c *Core) LookupSolver(name []byte) *Solver {
	return c.solvers[string(name)]
}

// FastPathEnabled reports whether the cache-hit fast path can run at
// all: it requires a solution cache.
func (c *Core) FastPathEnabled() bool { return c.cache != nil }

// HitScratch carries the reusable buffers of one fast-path cache probe.
// Callers pool it; nothing it holds may escape the serving of one
// request except through TryCachedSolve's returned solution, whose
// Assign aliases the scratch buffer.
type HitScratch struct {
	can    cache.CanonScratch
	assign []int
}

// TryCachedSolve canonicalizes the request on scratch buffers and
// probes the solution cache. On a hit the returned solution's Assign
// is hs's reused buffer (valid until the next call); the error return
// is the cached deterministic failure (an infeasibility), also a hit.
// ok is false on a miss or when no cache is configured — the caller
// falls back to the queued path, which starts or joins a flight.
func (c *Core) TryCachedSolve(hs *HitScratch, ent *Solver, ext *instance.Extended, k int, budget int64, eps float64) (sol instance.Solution, ok bool, err error) {
	if c.cache == nil {
		return instance.Solution{}, false, nil
	}
	p := engine.Params{
		K: k, Budget: budget, Eps: eps,
		Workers: c.cfg.SolverWorkers, Obs: c.cfg.Obs,
	}
	can := hs.can.Canonicalize(ent.name, ent.spec.Caps, ext, p)
	sol, ok, err = c.cache.TryGet(can, ent.name, hs.assign)
	if ok && err == nil {
		hs.assign = sol.Assign // keep the (possibly grown) buffer
	}
	return sol, ok, err
}

// ObserveFast mirrors the worker path's per-request accounting for a
// hit served without queuing: zero queue wait, zero engine compute,
// all cache.
func (c *Core) ObserveFast(ent *Solver, cacheNS int64, failed bool) {
	if c.cfg.Obs == nil {
		return
	}
	c.mQueueNS.Observe(0)
	c.mCacheNS.Observe(cacheNS)
	c.mSolveNS.Observe(0)
	c.mRequests.Inc()
	if failed {
		c.mErrors.Inc()
	}
	ent.requests.Inc()
	ent.latency.Observe(cacheNS)
}

// Peek probes the solution cache for a finished result without
// admitting, solving, or warming anything — the read side of the peer
// cache-fill protocol (DESIGN.md §13): after a membership change the
// new owner of a key peeks the previous owner, and a miss here must
// stay a cheap no-op. ok is false on a miss, for sweep-kind or
// unregistered solvers, or with caching disabled; err is a cached
// deterministic failure (also ok=true).
func (c *Core) Peek(req *Request) (sol instance.Solution, ok bool, err error) {
	if c.cache == nil {
		return instance.Solution{}, false, nil
	}
	spec, found := engine.Lookup(req.Solver)
	if !found || spec.Kind != engine.KindSolution {
		return instance.Solution{}, false, nil
	}
	p := engine.Params{K: req.K, Budget: req.Budget, Eps: req.Eps}
	can := cache.Canonicalize(req.Solver, spec.Caps, &req.Instance, p)
	return c.cache.TryGet(can, req.Solver, nil)
}
