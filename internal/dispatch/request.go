// The dispatch core's request/result shapes and typed errors. The
// Request struct carries JSON tags because it doubles as the canonical
// body schema every transport speaks (the HTTP server and client alias
// it), but nothing in this package reads or writes JSON — transports
// own encoding, the core owns meaning.
package dispatch

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/instance"
)

// Typed errors the core returns; transports map them onto their wire's
// status vocabulary (the HTTP adapter: 429, 404, 400).
var (
	// ErrQueueFull reports an admission rejection: the bounded queue was
	// full when the request arrived. The request was never queued and is
	// safe to retry — against this core later, or another shard now.
	ErrQueueFull = errors.New("admission queue full")
	// ErrUnknownSolver re-exports the registry's sentinel so transports
	// can classify Validate and Result errors without importing
	// internal/engine.
	ErrUnknownSolver = engine.ErrUnknownSolver
	// ErrUnsupported re-exports the registry's capability-mismatch
	// sentinel.
	ErrUnsupported = engine.ErrUnsupported
)

// BadRequestError marks a request Validate rejected as malformed: an
// invalid instance or tuning parameters the solver does not consume.
// Transports map it to their invalid-argument status (HTTP 400).
type BadRequestError struct{ Msg string }

func (e *BadRequestError) Error() string { return e.Msg }

// unknownSolverError is Validate's unknown-solver rejection: it keeps
// the serving layer's historical message while classifying as
// ErrUnknownSolver.
type unknownSolverError struct{ name string }

func (e *unknownSolverError) Error() string {
	return fmt.Sprintf("unknown solver %q (known: %s)", e.name, KnownSolvers())
}
func (e *unknownSolverError) Unwrap() error { return engine.ErrUnknownSolver }

// Request is one solve request in canonical decoded form — the body of
// POST /v1/solve, and the unit every transport hands to Core.Do. The
// instance embeds the same extended JSON that genwork writes and the
// CLI reads.
type Request struct {
	// Solver names a registered engine solver (see Catalog); sweep-kind
	// entries such as "frontier" are accepted and return Points instead
	// of an assignment.
	Solver string `json:"solver"`
	// Instance is the problem in the extended format (base fields
	// m/jobs/assign plus optional allowed/conflicts), exactly as written
	// by genwork.
	Instance instance.Extended `json:"instance"`
	// K is the move budget for k-capable solvers.
	K int `json:"k,omitempty"`
	// Budget is the relocation cost budget for budget-capable solvers.
	Budget int64 `json:"budget,omitempty"`
	// Eps is the approximation parameter; zero means the solver default.
	Eps float64 `json:"eps,omitempty"`
	// TimeoutMS requests a per-solve deadline in milliseconds. Zero
	// means the core's default; every request is clamped to the
	// configured maximum. The deadline covers queue wait plus solve.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Ks lists the move budgets for a sweep-kind solver. Empty means the
	// default doubling ladder 0, 1, 2, 4, … capped at the job count.
	Ks []int `json:"ks,omitempty"`
	// PeerFill is a routing hint, not part of the body: the base URL of
	// the shard that owned this request's key before a membership
	// change. On a local cache miss the flight asks that peer for the
	// finished solution before running the engine (requires Config.Fill).
	PeerFill string `json:"-"`
}

// SweepPoint is one point of a sweep-kind solver's tradeoff curve.
type SweepPoint struct {
	K        int   `json:"k"`
	Makespan int64 `json:"makespan"`
	Moves    int   `json:"moves"`
}

// Result is the outcome of one dispatched request. Err is the solver-
// level outcome (nil on success); the phase timings are populated
// either way. Exactly one of Sol (solution-kind) or Points (Sweep
// true) is meaningful.
type Result struct {
	Sol    instance.Solution
	Points []SweepPoint
	Sweep  bool
	// Cache reports how the solution cache served this solve — "hit",
	// "miss", or "coalesced" — and "" when the request bypassed the
	// cache (sweeps, or caching disabled).
	Cache string
	// PeerFill reports the peer warm-up on a local miss with a PeerFill
	// target: "hit" (peer supplied the solution; no engine run) or
	// "miss" (peer didn't have it; engine ran). "" when no peer was
	// consulted.
	PeerFill string
	Err      error
	// QueueNS/CacheNS/SolveNS decompose the server-side latency:
	// admission-queue wait, cache-layer time excluding engine compute,
	// engine compute.
	QueueNS, CacheNS, SolveNS int64
}

// Validate vets a decoded request against the registry, mirroring the
// CLI's flag validation: nil, or one of the typed errors — a
// *BadRequestError (invalid instance, unconsumed tuning parameters,
// ks on a non-sweep), or an ErrUnknownSolver-classified error.
func (c *Core) Validate(req *Request) error {
	if err := req.Instance.Validate(); err != nil {
		c.cfg.Obs.Count("server.bad_requests", 1)
		return &BadRequestError{Msg: fmt.Sprintf("invalid instance: %v", err)}
	}
	spec, ok := engine.Lookup(req.Solver)
	if !ok {
		c.cfg.Obs.Count("server.unknown_solver", 1)
		return &unknownSolverError{name: req.Solver}
	}
	// Reject parameters the solver does not consume: a nonzero field
	// counts as explicitly set.
	set := map[string]bool{"k": req.K != 0, "budget": req.Budget != 0, "eps": req.Eps != 0}
	if err := engine.ValidateFlags(req.Solver, set); err != nil {
		c.cfg.Obs.Count("server.bad_requests", 1)
		return &BadRequestError{Msg: err.Error()}
	}
	if len(req.Ks) > 0 && spec.Kind != engine.KindSweep {
		c.cfg.Obs.Count("server.bad_requests", 1)
		return &BadRequestError{Msg: fmt.Sprintf("solver %q is not a sweep; ks applies only to sweep-kind solvers", req.Solver)}
	}
	return nil
}

// KnownSolvers renders the registry's solver names for error messages.
func KnownSolvers() string { return strings.Join(engine.Names(), ", ") }

// SolverInfo is one solver-catalog entry — the registry spec flattened
// into a wire-friendly shape (the GET /v1/solvers payload).
type SolverInfo struct {
	Name          string   `json:"name"`
	Summary       string   `json:"summary"`
	Guarantee     string   `json:"guarantee"`
	Kind          string   `json:"kind"` // "solution" or "sweep"
	Flags         []string `json:"flags,omitempty"`
	Exponential   bool     `json:"exponential,omitempty"`
	NeedsExtended bool     `json:"needs_extended,omitempty"`
}

// Catalog renders the engine registry as the solver catalog.
func Catalog() []SolverInfo {
	specs := engine.Specs()
	infos := make([]SolverInfo, len(specs))
	for i, s := range specs {
		kind := "solution"
		if s.Kind == engine.KindSweep {
			kind = "sweep"
		}
		infos[i] = SolverInfo{
			Name:          s.Name,
			Summary:       s.Summary,
			Guarantee:     s.Guarantee,
			Kind:          kind,
			Flags:         s.FlagNames(),
			Exponential:   s.Caps.Exponential,
			NeedsExtended: s.Caps.NeedsExtended,
		}
	}
	return infos
}
