package dispatch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/instance"
	"repro/internal/obs"
)

// Test-only solvers, registered once per test binary (the registry has
// no removal — registration is init-time wiring).
var registerOnce sync.Once

func registerTestSolvers() {
	registerOnce.Do(func() {
		engine.Register(engine.Spec{
			Name: "dispatch-test-block", Summary: "blocks until released or cancelled", Guarantee: "-",
			Run: func(ctx context.Context, in *instance.Instance, _ engine.Params) (instance.Solution, error) {
				blockStarted <- struct{}{}
				select {
				case <-blockRelease:
				case <-ctx.Done():
				}
				return instance.NewSolution(in, in.Assign), nil
			},
		})
		engine.Register(engine.Spec{
			Name: "dispatch-test-hang", Summary: "parks until cancelled", Guarantee: "-",
			Run: func(ctx context.Context, _ *instance.Instance, _ engine.Params) (instance.Solution, error) {
				<-ctx.Done()
				return instance.Solution{}, ctx.Err()
			},
		})
	})
}

var (
	blockStarted = make(chan struct{}, 64)
	blockRelease = make(chan struct{})
)

func coreReq(k int) *Request {
	in := instance.MustNew(2, []int64{5, 4, 3, 2}, nil, []int{0, 0, 0, 0})
	req := &Request{Solver: "mpartition", K: k}
	req.Instance.Instance = *in
	return req
}

// TestCoreDoSolves drives the core directly — no transport at all —
// and checks the full result shape: solution, cache outcome, timings.
func TestCoreDoSolves(t *testing.T) {
	c := New(Config{Workers: 2, Obs: obs.New()})
	t.Cleanup(c.Close)
	ctx := context.Background()

	req := coreReq(2)
	if err := c.Validate(req); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	res, err := c.Do(ctx, req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("solve error: %v", res.Err)
	}
	if res.Cache != "miss" {
		t.Fatalf("first solve Cache = %q, want miss", res.Cache)
	}
	if len(res.Sol.Assign) != 4 {
		t.Fatalf("assign length %d, want 4", len(res.Sol.Assign))
	}
	res, err = c.Do(ctx, req)
	if err != nil || res.Err != nil {
		t.Fatalf("second Do: %v / %v", err, res.Err)
	}
	if res.Cache != "hit" {
		t.Fatalf("second solve Cache = %q, want hit", res.Cache)
	}
}

// TestCoreValidateTaxonomy pins the typed errors transports map to
// statuses: unknown solver (with the catalog in the message),
// malformed instance, and parameter misuse.
func TestCoreValidateTaxonomy(t *testing.T) {
	c := New(Config{Workers: 1})
	t.Cleanup(c.Close)

	req := coreReq(2)
	req.Solver = "nope"
	err := c.Validate(req)
	if !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("unknown solver err = %v, want ErrUnknownSolver", err)
	}

	var bad *BadRequestError
	req = coreReq(2)
	req.Instance.Instance.M = 0
	if err := c.Validate(req); !errors.As(err, &bad) {
		t.Fatalf("invalid instance err = %v, want BadRequestError", err)
	}

	req = coreReq(2)
	req.Ks = []int{1, 2} // ks on a non-sweep solver
	if err := c.Validate(req); !errors.As(err, &bad) {
		t.Fatalf("ks on non-sweep err = %v, want BadRequestError", err)
	}
}

// TestCoreQueueFull pins fail-fast admission: with the one worker
// blocked and the queue at depth, the next Do returns ErrQueueFull
// without waiting.
func TestCoreQueueFull(t *testing.T) {
	registerTestSolvers()
	c := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: -1, Obs: obs.New()})
	t.Cleanup(c.Close)
	ctx := context.Background()

	var wg sync.WaitGroup
	start := func(k int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := coreReq(k)
			req.Solver = "dispatch-test-block"
			c.Do(ctx, req)
		}()
	}
	start(1) // occupies the worker
	<-blockStarted
	start(2) // occupies the queue slot
	for c.QueueLen() == 0 {
		time.Sleep(time.Millisecond)
	}

	req := coreReq(3)
	req.Solver = "dispatch-test-block"
	_, err := c.Do(ctx, req)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Do with full queue = %v, want ErrQueueFull", err)
	}
	close(blockRelease)
	wg.Wait()
}

// TestCoreDeadline pins that a request-supplied timeout cancels the
// solve mid-search and surfaces context.DeadlineExceeded.
func TestCoreDeadline(t *testing.T) {
	registerTestSolvers()
	c := New(Config{Workers: 1, CacheEntries: -1})
	t.Cleanup(c.Close)

	req := coreReq(1)
	req.Solver = "dispatch-test-hang"
	req.TimeoutMS = 20
	_, err := c.Do(context.Background(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do past deadline = %v, want DeadlineExceeded", err)
	}
}

// TestCoreShutdownDrains pins the drain contract: Shutdown waits for
// in-flight work, and the core reports Draining.
func TestCoreShutdownDrains(t *testing.T) {
	c := New(Config{Workers: 2})
	done := make(chan Result, 1)
	go func() {
		res, _ := c.Do(context.Background(), coreReq(2))
		done <- res
	}()
	res := <-done
	if res.Err != nil {
		t.Fatalf("solve before shutdown: %v", res.Err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if !c.Draining() {
		t.Fatal("Draining() = false after Shutdown")
	}
}
