// Package dispatch is the transport-agnostic serving core of the
// repository: everything between "a decoded, validated solve request"
// and "a solution (or typed error) with per-phase timings" — with no
// knowledge of HTTP, JSON, or any other wire format.
//
// It owns, in order of a request's life:
//
//   - Validation against the engine registry (typed errors: unknown
//     solver, bad parameters) — Validate.
//   - Deadline derivation: the request's timeout clamped to the
//     configured maximum, layered on the caller's context and the
//     core's root context so a drain cancels stragglers.
//   - The bounded admission queue and fixed worker pool: a request
//     either enters the queue or fails fast with ErrQueueFull; workers
//     bound concurrent solver compute regardless of transport fan-in.
//   - The solution cache: canonical-form LRU + single-flight
//     coalescing (internal/cache), including the peer cache-fill hook
//     a routing tier uses to warm a shard from the previous owner of a
//     key (DESIGN.md §13).
//   - The engine call itself, panic-isolated, with compute measured
//     separately from cache and queue time.
//
// The HTTP layer (internal/server) is a thin adapter over this core:
// it decodes bodies, maps the typed errors onto status codes, and
// renders Results. A shard router or any future transport (gRPC, an
// in-process fleet simulator) consumes the same core — that is the
// point of the split: the serving semantics live here exactly once.
//
// Construction mirrors internal/server's former monolith: New starts
// the worker pool; Shutdown drains it (admission is the transport's
// concern — callers stop calling Do — while queued and in-flight work
// completes, then stragglers are cancelled on ctx expiry).
package dispatch

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	rebalance "repro"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/par"
)

// Defaults applied by New to zero Config fields.
const (
	DefaultQueueDepth   = 64
	DefaultTimeout      = 30 * time.Second
	DefaultMaxTimeout   = 5 * time.Minute
	DefaultCacheEntries = cache.DefaultMaxEntries
)

// FillFunc is the peer cache-fill hook threaded through to the
// solution cache; see cache.FillFunc. It is aliased here so transports
// can configure peer fill without importing internal/cache.
type FillFunc = cache.FillFunc

// Config tunes a Core. The zero value is usable: New fills every unset
// field with the package default.
type Config struct {
	// Workers is the solver pool size — the number of goroutines
	// executing solves concurrently. ≤ 0 means runtime.GOMAXPROCS(0)
	// (the internal/par resolution rule).
	Workers int
	// SolverWorkers is the internal parallelism handed to each solve
	// (engine Params.Workers). ≤ 0 means 1: with the pool providing
	// across-request parallelism, single-threaded solver internals keep
	// the machine share per request deterministic.
	SolverWorkers int
	// QueueDepth bounds the admission queue; a request arriving with the
	// queue full fails with ErrQueueFull. ≤ 0 means DefaultQueueDepth.
	QueueDepth int
	// DefaultTimeout is the per-request deadline applied when the
	// request names none. ≤ 0 means the package default.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied deadlines. ≤ 0 means the
	// package default.
	MaxTimeout time.Duration
	// CacheEntries bounds the solution cache's LRU. 0 means
	// DefaultCacheEntries; negative disables caching entirely.
	CacheEntries int
	// Obs receives the serving metrics (request counts, latency
	// histograms, queue depth, rejections) and is threaded into every
	// solve; nil disables instrumentation. The metric names keep the
	// server.* family they have carried since the serving layer landed:
	// the core is the serving pipeline, whichever transport fronts it.
	Obs *obs.Sink
	// Fill is the peer cache-fill hook: when a Request names a PeerFill
	// target and the local cache misses, the flight asks that peer for
	// the finished solution before running the engine. Nil disables
	// peer fill.
	Fill FillFunc
	// MaxSessions bounds the rebalancing-session table; a create beyond
	// the bound (after expired sessions are evicted) fails with
	// ErrSessionTableFull. ≤ 0 means DefaultMaxSessions.
	MaxSessions int
	// SessionTTL is the idle lifetime of a session: one that sees no
	// create/get/delta traffic for this long is evicted. ≤ 0 means
	// DefaultSessionTTL.
	SessionTTL time.Duration
}

// task is one admitted solve request travelling from Do to a worker.
type task struct {
	ctx      context.Context
	req      *Request
	enqueued time.Time
	qspan    *obs.Span   // queue-wait span; ended by the worker at dequeue
	done     chan Result // buffered(1): the worker's send never blocks
}

// Core dispatches solve requests through the engine registry: bounded
// admission, deadlines, solution cache, worker pool. Create with New
// and release with Shutdown (or Close); transports adapt their wire
// format onto Do and never touch the cache or engine directly.
type Core struct {
	cfg        Config
	queue      chan *task
	cache      *cache.Cache    // nil when caching is disabled
	poolSize   int             // resolved worker count
	rootCtx    context.Context // cancelled to kill stragglers and stop workers
	rootCancel context.CancelFunc
	draining   atomic.Bool
	inflight   sync.WaitGroup // queued + running tasks
	inflightN  atomic.Int64   // same population, as a number for the gauge
	workers    chan struct{}  // closed when the pool has exited
	sessions   *sessionTable  // rebalancing sessions (session.go)

	// solvers is the per-solver serving table, built once from the
	// registry: interned names for allocation-free lookup plus the
	// pre-resolved per-solver counters. Solvers registered after New
	// (tests) miss here and take the allocating fallback.
	solvers map[string]*Solver
	// Pre-resolved aggregate serving metrics; nil without an obs sink.
	mRequests, mErrors           *obs.Counter
	mQueueNS, mCacheNS, mSolveNS *obs.Histogram
}

// New normalizes cfg, starts the worker pool, and returns the core.
func New(cfg Config) *Core {
	if cfg.SolverWorkers <= 0 {
		cfg.SolverWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = DefaultTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.DefaultTimeout > cfg.MaxTimeout {
		cfg.DefaultTimeout = cfg.MaxTimeout
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = DefaultSessionTTL
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Core{
		cfg:        cfg,
		queue:      make(chan *task, cfg.QueueDepth),
		rootCtx:    ctx,
		rootCancel: cancel,
		workers:    make(chan struct{}),
		sessions:   &sessionTable{entries: make(map[string]*sessionEntry)},
	}
	go c.sessionJanitor()
	if cfg.CacheEntries >= 0 {
		// Flights run under rootCtx so a drain timeout cancels them.
		c.cache = cache.New(cache.Config{
			MaxEntries: cfg.CacheEntries, BaseCtx: ctx, Obs: cfg.Obs, Fill: cfg.Fill,
		})
	}
	c.solvers = make(map[string]*Solver)
	for _, spec := range engine.Specs() {
		c.solvers[spec.Name] = &Solver{name: spec.Name, spec: spec}
	}
	if cfg.Obs != nil {
		reg := cfg.Obs.Reg
		c.mRequests = reg.Counter("server.requests")
		c.mErrors = reg.Counter("server.errors")
		c.mQueueNS = reg.Histogram("server.queue_ns")
		c.mCacheNS = reg.Histogram("server.cache_ns")
		c.mSolveNS = reg.Histogram("server.solve_ns")
		for name, ent := range c.solvers {
			ent.requests = reg.Counter("server.requests." + name)
			ent.latency = reg.Histogram("server.latency_ns." + name)
		}
	}
	n := par.Workers(cfg.Workers, 0)
	c.poolSize = n
	go func() {
		defer close(c.workers)
		// One par task per pool worker: par supplies the sizing rules and
		// last-resort panic capture; per-solve panics are converted to
		// errors inside dispatch and never reach the pool.
		_ = par.Do(context.Background(), n, n, func(int) error {
			c.workerLoop()
			return nil
		})
	}()
	return c
}

// PoolSize returns the resolved worker count.
func (c *Core) PoolSize() int { return c.poolSize }

// QueueDepth returns the admission queue bound.
func (c *Core) QueueDepth() int { return c.cfg.QueueDepth }

// QueueLen returns the admission queue's current occupancy.
func (c *Core) QueueLen() int { return len(c.queue) }

// Draining reports whether Shutdown has begun.
func (c *Core) Draining() bool { return c.draining.Load() }

// workerLoop pulls tasks until the root context is cancelled, then
// drains what is left in the queue — those tasks' contexts are already
// cancelled (Shutdown cancels rootCtx only after admission stopped), so
// each finishes immediately with a context error.
func (c *Core) workerLoop() {
	for {
		select {
		case t := <-c.queue:
			c.runTask(t)
		case <-c.rootCtx.Done():
			for {
				select {
				case t := <-c.queue:
					c.runTask(t)
				default:
					return
				}
			}
		}
	}
}

// runTask executes one admitted task and delivers its result.
func (c *Core) runTask(t *task) {
	defer c.inflight.Done()
	defer func() { c.gauge("server.inflight", c.inflightN.Add(-1)) }()
	c.gauge("server.queue_depth", int64(len(c.queue)))
	queueNS := time.Since(t.enqueued).Nanoseconds()
	t.qspan.End()
	c.cfg.Obs.Observe("server.queue_ns", queueNS)
	if err := t.ctx.Err(); err != nil {
		// Expired while queued: don't burn a worker on a dead request.
		c.cfg.Obs.Count("server.expired_in_queue", 1)
		t.done <- Result{Err: err, QueueNS: queueNS}
		return
	}
	start := time.Now()
	res := c.solve(t)
	res.QueueNS = queueNS
	totalNS := time.Since(start).Nanoseconds()
	// solve measured the engine compute (SolveNS); the remainder of the
	// dispatch time belongs to the cache layer when one was in play.
	if res.Cache != "" {
		if res.CacheNS = totalNS - res.SolveNS; res.CacheNS < 0 {
			res.CacheNS = 0
		}
		c.cfg.Obs.Observe("server.cache_ns", res.CacheNS)
	}
	c.cfg.Obs.Count("server.requests", 1)
	if ent := c.solvers[t.req.Solver]; ent != nil && ent.requests != nil {
		ent.requests.Inc()
		ent.latency.Observe(totalNS)
	} else {
		c.cfg.Obs.Count("server.requests."+t.req.Solver, 1)
		c.cfg.Obs.Observe("server.latency_ns."+t.req.Solver, totalNS)
	}
	c.cfg.Obs.Observe("server.solve_ns", res.SolveNS)
	if res.Err != nil {
		c.cfg.Obs.Count("server.errors", 1)
	}
	t.done <- res
}

// solve runs the named solver (or sweep) under the task's context. A
// solver panic is converted into an error so one bad request cannot
// take the pool down. Solution-kind solves route through the solution
// cache when one is configured.
func (c *Core) solve(t *task) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("server: solver %q panicked: %v", t.req.Solver, r)
		}
	}()
	spec, ok := engine.Lookup(t.req.Solver)
	if !ok {
		// Validation already vetted the name; re-check defensively.
		res.Err = fmt.Errorf("%w: %q", engine.ErrUnknownSolver, t.req.Solver)
		return res
	}
	in := &t.req.Instance.Instance
	if spec.Kind == engine.KindSweep {
		ks := t.req.Ks
		if len(ks) == 0 {
			ks = rebalance.DefaultFrontierKs(in.N())
		}
		// Sweeps don't route through engine.Spec.Solve, so the solve
		// span is opened here.
		sctx, sp := obs.StartSpan(t.ctx, "solve")
		if sp != nil {
			sp.SetAttr(obs.String("solver", t.req.Solver))
		}
		t0 := time.Now()
		points, err := rebalance.FrontierCtx(sctx, in, ks, rebalance.FrontierOptions{
			Workers: c.cfg.SolverWorkers, Obs: c.cfg.Obs,
		})
		res.SolveNS = time.Since(t0).Nanoseconds()
		sp.End()
		res.Sweep = true
		res.Err = err
		res.Points = make([]SweepPoint, len(points))
		for i, p := range points {
			res.Points[i] = SweepPoint{K: p.K, Makespan: p.Makespan, Moves: p.Moves}
		}
		return res
	}
	p := engine.Params{
		K:       t.req.K,
		Budget:  t.req.Budget,
		Eps:     t.req.Eps,
		Workers: c.cfg.SolverWorkers,
		Obs:     c.cfg.Obs,
		Allowed: t.req.Instance.Allowed, Conflicts: t.req.Instance.Conflicts,
	}
	if c.cache != nil {
		// The cache span covers lookup, canonicalization, coalesce wait
		// and any peer fill; the engine solve becomes its child via the
		// span linkage grafted onto the flight context (internal/cache).
		cctx, csp := obs.StartSpan(t.ctx, "cache")
		var st cache.Stats
		res.Sol, st, res.Err = c.cache.SolveTimedPeer(cctx, t.req.Solver, &t.req.Instance, p, t.req.PeerFill)
		res.Cache, res.SolveNS, res.PeerFill = st.Outcome.String(), st.EngineNS, st.PeerFill
		if csp != nil {
			csp.SetAttr(obs.String("outcome", st.Outcome.String()))
		}
		csp.End()
		return res
	}
	t0 := time.Now()
	res.Sol, res.Err = engine.Solve(t.ctx, t.req.Solver, in, p)
	res.SolveNS = time.Since(t0).Nanoseconds()
	return res
}

// requestCtx derives the solve context for one request: the request's
// timeout (clamped to the configured maximum) layered on parent. The
// context dies with the first of: the deadline, the parent (client
// connection), or a drain timeout (rootCtx). The returned cancel also
// releases the rootCtx hook.
func (c *Core) requestCtx(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	timeout := c.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > c.cfg.MaxTimeout {
		timeout = c.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(parent, timeout)
	stop := context.AfterFunc(c.rootCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// Do admits one validated request into the worker queue and waits for
// its result. The request runs under its own deadline (TimeoutMS
// clamped to the configured maximum, else the default) layered on ctx;
// trace span linkage in ctx is honored (the queue and cache phases
// record child spans).
//
// The error return covers requests that never produced a solver
// result: ErrQueueFull when the admission queue was full, or the
// context's error when the caller's deadline or disconnect abandoned
// the wait (the worker, if it reached the task, observes the same
// cancelled context and stops promptly). A non-nil Result.Err instead
// reports the solver's own outcome — unknown solver, infeasible,
// deadline mid-solve — with the phase timings populated.
func (c *Core) Do(ctx context.Context, req *Request) (Result, error) {
	dctx, cancel := c.requestCtx(ctx, req.TimeoutMS)
	defer cancel()
	// The queue span opens at enqueue and is ended by the worker at
	// dequeue, so its duration is the admission wait. It is a child of
	// the request's root span, not a parent of the solve spans.
	_, qspan := obs.StartSpan(dctx, "queue")
	t := &task{ctx: dctx, req: req, enqueued: time.Now(), qspan: qspan, done: make(chan Result, 1)}
	c.inflight.Add(1)
	select {
	case c.queue <- t:
		c.gauge("server.inflight", c.inflightN.Add(1))
		c.gauge("server.queue_depth", int64(len(c.queue)))
	default:
		c.inflight.Done()
		if qspan != nil {
			qspan.SetAttr(obs.Bool("rejected", true))
		}
		qspan.End()
		c.cfg.Obs.Count("server.rejected_full", 1)
		return Result{}, fmt.Errorf("%w (%d deep); retry later", ErrQueueFull, c.cfg.QueueDepth)
	}
	select {
	case res := <-t.done:
		return res, nil
	case <-dctx.Done():
		// The worker (if it reached the task) sees the same cancelled
		// context and stops promptly; its buffered send is discarded.
		err := dctx.Err()
		if err == context.DeadlineExceeded {
			c.cfg.Obs.Count("server.deadline_expired", 1)
		}
		return Result{}, fmt.Errorf("solve abandoned: %w", err)
	}
}

// Shutdown drains the core: the transport must stop admitting first
// (Draining reports true immediately), then queued and in-flight
// solves run to completion. If ctx fires first, the stragglers' solve
// contexts are cancelled — they return promptly with context errors —
// and ctx.Err() is reported. The worker pool has fully exited when
// Shutdown returns.
func (c *Core) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	drained := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		c.cfg.Obs.Count("server.drain_cancelled", 1)
	}
	c.rootCancel() // stops workers; cancels any straggler solve contexts
	// Sessions close after rootCancel: in-flight deltas have either
	// drained with the inflight group or see their contexts cancelled
	// and release the per-session locks promptly, so the close cannot
	// stall on a straggler.
	c.closeSessions()
	<-c.workers
	return err
}

// Close is Shutdown with no grace: in-flight solves are cancelled
// immediately.
func (c *Core) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = c.Shutdown(ctx)
}

// gauge sets a named gauge when instrumentation is on.
func (c *Core) gauge(name string, v int64) {
	if c.cfg.Obs != nil {
		c.cfg.Obs.Reg.Gauge(name).Set(v)
	}
}
