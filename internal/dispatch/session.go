// The dispatch core's session table: bounded, TTL-evicted, per-session
// serialized access to internal/session state. Transports adapt their
// wire format onto SessionCreate / SessionDelta / SessionGet exactly as
// they adapt solve bodies onto Do — the table, eviction policy, and
// delta serialization live here once, not per transport.
package dispatch

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/instance"
	"repro/internal/session"
)

// Session-table defaults applied by New to zero Config fields.
const (
	DefaultMaxSessions = 256
	DefaultSessionTTL  = 15 * time.Minute
)

// Typed session errors; the HTTP adapter maps them onto 404 and 429.
var (
	// ErrSessionNotFound reports a session id the table does not hold —
	// never created, expired, or closed by a drain.
	ErrSessionNotFound = errors.New("session not found")
	// ErrSessionTableFull reports a create rejected because the bounded
	// table is at capacity (after evicting anything expired). Safe to
	// retry once existing sessions expire or close.
	ErrSessionTableFull = errors.New("session table full")
)

// SessionRequest is the decoded body of POST /v1/session.
type SessionRequest struct {
	// M creates an empty farm of m processors; ignored when Instance is
	// set (the seed instance carries its own m, and its job indices
	// become the caller job ids).
	M int `json:"m,omitempty"`
	// Instance seeds the session with a live assignment.
	Instance *instance.Extended `json:"instance,omitempty"`
	// MoveBudget is the per-delta rebalance budget k (budget mode).
	MoveBudget int `json:"move_budget,omitempty"`
	// Target > 0 switches to bicriteria target mode (makespan ≤
	// 1.5·target with move-count-optimal rebalances when reachable).
	Target int64 `json:"target,omitempty"`
	// Manual disables per-delta auto-rebalancing; state then changes
	// only structurally until an explicit rebalance delta arrives.
	Manual bool `json:"manual,omitempty"`
}

// SessionDeltaRequest is the decoded body of POST /v1/session/{id}/delta.
type SessionDeltaRequest struct {
	// Op is one of "arrive", "depart", "resize", "proc_add",
	// "proc_drain", or "rebalance" (explicit solve with K moves for
	// manual sessions).
	Op   string `json:"op"`
	Job  int    `json:"job,omitempty"`
	Size int64  `json:"size,omitempty"`
	Cost int64  `json:"cost,omitempty"`
	// Proc is the arrive placement or drain target. Omitted on an
	// arrival it means "least-loaded processor".
	Proc *int `json:"proc,omitempty"`
	// K is the move budget of an explicit "rebalance" op.
	K int `json:"k,omitempty"`
}

// SessionMove is one migration on the wire.
type SessionMove struct {
	Job  int `json:"job"`
	From int `json:"from"`
	To   int `json:"to"`
}

// SessionState summarizes a live session (GET /v1/session/{id} and the
// create response).
type SessionState struct {
	ID         string  `json:"id"`
	Rev        uint64  `json:"rev"`
	N          int     `json:"n"`
	M          int     `json:"m"`
	Makespan   int64   `json:"makespan"`
	LowerBound int64   `json:"lower_bound"`
	Loads      []int64 `json:"loads"`
	TotalMoves int64   `json:"total_moves"`
}

// SessionDeltaResult is the outcome of one applied delta.
type SessionDeltaResult struct {
	SessionState
	Forced     []SessionMove `json:"forced,omitempty"`
	Moves      []SessionMove `json:"moves,omitempty"`
	Rebalanced bool          `json:"rebalanced,omitempty"`
}

// sessionEntry is one table slot. The entry mutex serializes deltas to
// this session; lastUsed (unix nanos, guarded by the table mutex for
// writes at lookup) drives TTL eviction; closed flips once — under the
// entry mutex, after the entry has left the map — so an in-flight delta
// either completes before the close or observes it and reports
// ErrSessionNotFound, never a torn state.
type sessionEntry struct {
	mu       sync.Mutex
	sess     *session.Session
	id       string
	lastUsed time.Time
	closed   bool
}

// sessionTable is the Core's session store.
type sessionTable struct {
	mu      sync.Mutex
	entries map[string]*sessionEntry
}

// SessionCount returns the number of live sessions.
func (c *Core) SessionCount() int {
	c.sessions.mu.Lock()
	defer c.sessions.mu.Unlock()
	return len(c.sessions.entries)
}

// newSessionID returns a fresh 128-bit hex session id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// SessionCreate builds a session and installs it in the table. Errors:
// *BadRequestError for a malformed config or seed instance,
// ErrSessionTableFull when the table is at capacity after evicting
// expired sessions.
func (c *Core) SessionCreate(ctx context.Context, req *SessionRequest) (SessionState, error) {
	c.inflight.Add(1)
	defer c.inflight.Done()
	cfg := session.Config{
		M:             req.M,
		MoveBudget:    req.MoveBudget,
		Target:        req.Target,
		AutoRebalance: !req.Manual,
		Obs:           c.cfg.Obs,
	}
	if req.Instance != nil {
		if err := req.Instance.Validate(); err != nil {
			c.cfg.Obs.Count("server.bad_requests", 1)
			return SessionState{}, &BadRequestError{Msg: fmt.Sprintf("invalid instance: %v", err)}
		}
		cfg.Initial = &req.Instance.Instance
	}
	sess, err := session.New(cfg)
	if err != nil {
		c.cfg.Obs.Count("server.bad_requests", 1)
		return SessionState{}, &BadRequestError{Msg: err.Error()}
	}
	ent := &sessionEntry{sess: sess, id: newSessionID(), lastUsed: time.Now()}
	t := c.sessions
	t.mu.Lock()
	expired := c.evictExpiredLocked(time.Now())
	full := len(t.entries) >= c.cfg.MaxSessions
	if !full {
		t.entries[ent.id] = ent
		c.gauge("session.active", int64(len(t.entries)))
	}
	t.mu.Unlock()
	for _, e := range expired {
		if c.closeEntry(e) {
			c.cfg.Obs.Count("session.evicted", 1)
		}
	}
	if full {
		c.cfg.Obs.Count("session.rejected_full", 1)
		return SessionState{}, fmt.Errorf("%w (%d live); retry later", ErrSessionTableFull, c.cfg.MaxSessions)
	}
	c.cfg.Obs.Count("session.created", 1)
	var st SessionState
	ent.mu.Lock()
	c.fillState(ent, &st)
	ent.mu.Unlock()
	return st, nil
}

// SessionGet returns the current state of a live session, refreshing
// its TTL.
func (c *Core) SessionGet(id string) (SessionState, error) {
	ent, err := c.lookup(id)
	if err != nil {
		return SessionState{}, err
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.closed {
		return SessionState{}, sessionNotFound(id)
	}
	var st SessionState
	c.fillState(ent, &st)
	return st, nil
}

// SessionDelta applies one delta to a live session, serialized against
// other deltas to the same session (distinct sessions proceed in
// parallel), and refreshes its TTL. The delta runs under the same
// deadline policy as a solve: the core default clamped to the maximum,
// layered on ctx and the drain context.
func (c *Core) SessionDelta(ctx context.Context, id string, req *SessionDeltaRequest) (SessionDeltaResult, error) {
	c.inflight.Add(1)
	defer c.inflight.Done()
	ent, err := c.lookup(id)
	if err != nil {
		return SessionDeltaResult{}, err
	}
	dctx, cancel := c.requestCtx(ctx, 0)
	defer cancel()
	start := time.Now()
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.closed {
		return SessionDeltaResult{}, sessionNotFound(id)
	}
	var res SessionDeltaResult
	if req.Op == "rebalance" {
		moves, rerr := ent.sess.Rebalance(dctx, req.K)
		if rerr != nil {
			c.cfg.Obs.Count("session.delta_errors", 1)
			return SessionDeltaResult{}, rerr
		}
		res.Moves = wireMoves(moves)
		res.Rebalanced = true
	} else {
		d, ok := parseDelta(req)
		if !ok {
			c.cfg.Obs.Count("session.delta_errors", 1)
			return SessionDeltaResult{}, &BadRequestError{Msg: fmt.Sprintf("unknown delta op %q", req.Op)}
		}
		out, aerr := ent.sess.Apply(dctx, d)
		if aerr != nil {
			c.cfg.Obs.Count("session.delta_errors", 1)
			return SessionDeltaResult{}, mapSessionErr(aerr)
		}
		res.Forced = wireMoves(out.Forced)
		res.Moves = wireMoves(out.Moves)
		res.Rebalanced = out.Rebalanced
	}
	c.cfg.Obs.Count("session.deltas", 1)
	c.cfg.Obs.Count("session.moves", int64(len(res.Moves)+len(res.Forced)))
	c.cfg.Obs.Observe("session.delta_ns", time.Since(start).Nanoseconds())
	c.fillState(ent, &res.SessionState)
	return res, nil
}

// lookup resolves a session id, evicting it instead when its TTL has
// lapsed. The table lock is released before the caller takes the entry
// lock (no lock-order cycle with the eviction path).
func (c *Core) lookup(id string) (*sessionEntry, error) {
	t := c.sessions
	now := time.Now()
	t.mu.Lock()
	ent, ok := t.entries[id]
	if ok && now.Sub(ent.lastUsed) > c.cfg.SessionTTL {
		delete(t.entries, id)
		c.gauge("session.active", int64(len(t.entries)))
		t.mu.Unlock()
		if c.closeEntry(ent) {
			c.cfg.Obs.Count("session.evicted", 1)
		}
		return nil, sessionNotFound(id)
	}
	if ok {
		ent.lastUsed = now
	}
	t.mu.Unlock()
	if !ok {
		return nil, sessionNotFound(id)
	}
	return ent, nil
}

// evictExpiredLocked removes every expired entry from the table (table
// lock held) and returns them. Callers close the returned entries only
// after releasing the table lock: closeEntry blocks on each entry's own
// lock, and an in-flight delta may hold one for the length of a solve —
// the table must stay available to other sessions meanwhile.
func (c *Core) evictExpiredLocked(now time.Time) []*sessionEntry {
	t := c.sessions
	var expired []*sessionEntry
	for id, ent := range t.entries {
		if now.Sub(ent.lastUsed) > c.cfg.SessionTTL {
			delete(t.entries, id)
			expired = append(expired, ent)
		}
	}
	if len(expired) > 0 {
		c.gauge("session.active", int64(len(t.entries)))
	}
	return expired
}

// closeEntry marks an entry closed and reports whether this call was
// the one that closed it (idempotent). The entry has already left the
// table; any in-flight delta holding the entry lock finishes first,
// then every later access observes closed.
func (c *Core) closeEntry(ent *sessionEntry) bool {
	ent.mu.Lock()
	already := ent.closed
	ent.closed = true
	ent.mu.Unlock()
	return !already
}

// closeSessions empties the table on drain: every session is closed
// cleanly (in-flight deltas have already completed — Shutdown waits for
// the inflight group first) and later accesses report
// ErrSessionNotFound.
func (c *Core) closeSessions() {
	t := c.sessions
	t.mu.Lock()
	entries := make([]*sessionEntry, 0, len(t.entries))
	for id, ent := range t.entries {
		delete(t.entries, id)
		entries = append(entries, ent)
	}
	c.gauge("session.active", 0)
	t.mu.Unlock()
	for _, ent := range entries {
		if c.closeEntry(ent) {
			c.cfg.Obs.Count("session.closed", 1)
		}
	}
}

// sessionJanitor evicts expired sessions in the background until the
// core's root context dies.
func (c *Core) sessionJanitor() {
	interval := c.cfg.SessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.sessions.mu.Lock()
			expired := c.evictExpiredLocked(time.Now())
			c.sessions.mu.Unlock()
			for _, ent := range expired {
				if c.closeEntry(ent) {
					c.cfg.Obs.Count("session.evicted", 1)
				}
			}
		case <-c.rootCtx.Done():
			return
		}
	}
}

// fillState stamps the session summary (entry lock held).
func (c *Core) fillState(ent *sessionEntry, st *SessionState) {
	st.ID = ent.id
	st.Rev = ent.sess.Rev()
	st.N = ent.sess.Len()
	st.M = ent.sess.M()
	st.Makespan = ent.sess.Makespan()
	st.LowerBound = ent.sess.LowerBound()
	st.Loads = ent.sess.Loads()
	st.TotalMoves = ent.sess.TotalMoves()
}

func sessionNotFound(id string) error {
	return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
}

// parseDelta maps the wire delta onto the session's typed form.
func parseDelta(req *SessionDeltaRequest) (session.Delta, bool) {
	d := session.Delta{Job: req.Job, Size: req.Size, Cost: req.Cost}
	switch req.Op {
	case session.OpArrive.String():
		d.Op = session.OpArrive
		d.Proc = -1 // omitted proc = least-loaded placement
		if req.Proc != nil {
			d.Proc = *req.Proc
		}
	case session.OpDepart.String():
		d.Op = session.OpDepart
	case session.OpResize.String():
		d.Op = session.OpResize
	case session.OpProcAdd.String():
		d.Op = session.OpProcAdd
	case session.OpProcDrain.String():
		d.Op = session.OpProcDrain
		if req.Proc != nil {
			d.Proc = *req.Proc
		}
	default:
		return session.Delta{}, false
	}
	return d, true
}

// mapSessionErr converts session rejections into the transport error
// vocabulary: validation failures become *BadRequestError (HTTP 400),
// while infeasibility keeps its instance.ErrInfeasible classification
// (HTTP 422) and context errors pass through untouched.
func mapSessionErr(err error) error {
	if errors.Is(err, session.ErrUnknownJob) ||
		errors.Is(err, session.ErrDuplicateJob) ||
		(errors.Is(err, session.ErrBadDelta) && !errors.Is(err, session.ErrInfeasible)) {
		return &BadRequestError{Msg: err.Error()}
	}
	return err
}

// wireMoves converts session moves to the wire shape.
func wireMoves(moves []session.Move) []SessionMove {
	if len(moves) == 0 {
		return nil
	}
	out := make([]SessionMove, len(moves))
	for i, m := range moves {
		out[i] = SessionMove{Job: m.Job, From: m.From, To: m.To}
	}
	return out
}
