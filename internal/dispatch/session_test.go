package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/instance"
)

func sessionCore(t *testing.T, cfg Config) *Core {
	t.Helper()
	c := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	return c
}

func intp(v int) *int { return &v }

func TestSessionCreateDeltaGetLifecycle(t *testing.T) {
	c := sessionCore(t, Config{Workers: 1})
	st, err := c.SessionCreate(context.Background(), &SessionRequest{M: 2, MoveBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.M != 2 || st.N != 0 || st.Rev != 0 {
		t.Fatalf("create state: %+v", st)
	}
	res, err := c.SessionDelta(context.Background(), st.ID, &SessionDeltaRequest{
		Op: "arrive", Job: 1, Size: 10, Proc: intp(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 1 || res.Makespan != 10 || res.Rev != 1 {
		t.Fatalf("delta state: %+v", res)
	}
	// Omitted proc = least-loaded placement (processor 1 here).
	res, err = c.SessionDelta(context.Background(), st.ID, &SessionDeltaRequest{Op: "arrive", Job: 2, Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads[1] != 4 {
		t.Fatalf("least-loaded arrival loads: %v", res.Loads)
	}
	got, err := c.SessionGet(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 2 || got.Rev != res.Rev || got.ID != st.ID {
		t.Fatalf("get state: %+v", got)
	}
	if c.SessionCount() != 1 {
		t.Fatalf("session count %d", c.SessionCount())
	}
}

func TestSessionSeededCreateAndRebalanceOp(t *testing.T) {
	c := sessionCore(t, Config{Workers: 1})
	ext := instance.Extended{Instance: *instance.MustNew(3, []int64{30, 30, 30}, nil, []int{0, 0, 0})}
	st, err := c.SessionCreate(context.Background(), &SessionRequest{Instance: &ext, Manual: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 || st.M != 3 || st.Makespan != 90 {
		t.Fatalf("seeded state: %+v", st)
	}
	res, err := c.SessionDelta(context.Background(), st.ID, &SessionDeltaRequest{Op: "rebalance", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebalanced || len(res.Moves) != 2 || res.Makespan != 30 {
		t.Fatalf("rebalance result: %+v", res)
	}
}

func TestSessionErrorMapping(t *testing.T) {
	c := sessionCore(t, Config{Workers: 1})
	var bad *BadRequestError
	if _, err := c.SessionCreate(context.Background(), &SessionRequest{M: 0}); !errors.As(err, &bad) {
		t.Fatalf("m=0 create: %v", err)
	}
	if _, err := c.SessionCreate(context.Background(), &SessionRequest{M: 2, Target: -1}); !errors.As(err, &bad) {
		t.Fatalf("negative target: %v", err)
	}
	st, err := c.SessionCreate(context.Background(), &SessionRequest{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionDelta(context.Background(), st.ID, &SessionDeltaRequest{Op: "warp"}); !errors.As(err, &bad) {
		t.Fatalf("unknown op: %v", err)
	}
	if _, err := c.SessionDelta(context.Background(), st.ID, &SessionDeltaRequest{Op: "depart", Job: 9}); !errors.As(err, &bad) {
		t.Fatalf("unknown job: %v", err)
	}
	// Draining the last processor keeps its infeasibility class.
	if _, err := c.SessionDelta(context.Background(), st.ID, &SessionDeltaRequest{Op: "proc_drain", Proc: intp(0)}); !errors.Is(err, instance.ErrInfeasible) {
		t.Fatalf("drain last proc: %v", err)
	}
	// Unknown and syntactically odd ids are both plain not-found.
	if _, err := c.SessionGet("no-such-session"); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("unknown get: %v", err)
	}
	if _, err := c.SessionDelta(context.Background(), "", &SessionDeltaRequest{Op: "proc_add"}); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("empty id delta: %v", err)
	}
}

func TestSessionTableFull(t *testing.T) {
	c := sessionCore(t, Config{Workers: 1, MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if _, err := c.SessionCreate(context.Background(), &SessionRequest{M: 1}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.SessionCreate(context.Background(), &SessionRequest{M: 1})
	if !errors.Is(err, ErrSessionTableFull) {
		t.Fatalf("err = %v, want ErrSessionTableFull", err)
	}
}

func TestSessionTTLExpiry(t *testing.T) {
	c := sessionCore(t, Config{Workers: 1, SessionTTL: 30 * time.Millisecond})
	st, err := c.SessionCreate(context.Background(), &SessionRequest{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Activity refreshes the TTL.
	time.Sleep(20 * time.Millisecond)
	if _, err := c.SessionGet(st.ID); err != nil {
		t.Fatalf("refreshed session gone: %v", err)
	}
	// Idle past the TTL expires it — whether the janitor or the lookup
	// notices first, the caller sees not-found.
	time.Sleep(60 * time.Millisecond)
	if _, err := c.SessionGet(st.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("expired get: %v", err)
	}
	// Expiry frees table capacity.
	if _, err := c.SessionCreate(context.Background(), &SessionRequest{M: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionConcurrentDeltasSerialize hammers one session from many
// goroutines: per-session serialization must make every arrival land
// (distinct ids, no lost updates) with a consistent final state.
func TestSessionConcurrentDeltasSerialize(t *testing.T) {
	c := sessionCore(t, Config{Workers: 2})
	st, err := c.SessionCreate(context.Background(), &SessionRequest{M: 4, MoveBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i
				if _, err := c.SessionDelta(context.Background(), st.ID, &SessionDeltaRequest{
					Op: "arrive", Job: id, Size: int64(1 + id%17),
				}); err != nil {
					errs <- fmt.Errorf("worker %d job %d: %w", w, id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	got, err := c.SessionGet(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != workers*perWorker {
		t.Fatalf("n = %d, want %d", got.N, workers*perWorker)
	}
	if got.Rev != uint64(workers*perWorker) {
		t.Fatalf("rev = %d, want %d", got.Rev, workers*perWorker)
	}
	var total int64
	for _, l := range got.Loads {
		total += l
	}
	var want int64
	for id := 0; id < workers*perWorker; id++ {
		want += int64(1 + id%17)
	}
	if total != want {
		t.Fatalf("total load %d, want %d", total, want)
	}
}

// TestSessionDistinctSessionsParallel drives separate sessions from
// separate goroutines — they must not contend on each other's state.
func TestSessionDistinctSessionsParallel(t *testing.T) {
	c := sessionCore(t, Config{Workers: 2})
	const sessions, deltas = 6, 30
	ids := make([]string, sessions)
	for i := range ids {
		st, err := c.SessionCreate(context.Background(), &SessionRequest{M: 3, MoveBudget: 3})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for d := 0; d < deltas; d++ {
				if _, err := c.SessionDelta(context.Background(), id, &SessionDeltaRequest{
					Op: "arrive", Job: d, Size: int64(1 + (i+d)%9),
				}); err != nil {
					errs <- err
					return
				}
			}
		}(i, id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for _, id := range ids {
		st, err := c.SessionGet(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.N != deltas {
			t.Fatalf("session %s: n = %d, want %d", id, st.N, deltas)
		}
	}
}

// TestSessionEvictionRacesInflightDeltas races a tiny TTL (janitor
// firing every ~10ms) against continuous delta traffic: deltas must
// either apply or report ErrSessionNotFound — never panic, wedge, or
// corrupt the table.
func TestSessionEvictionRacesInflightDeltas(t *testing.T) {
	c := sessionCore(t, Config{Workers: 2, SessionTTL: 5 * time.Millisecond})
	deadline := time.Now().Add(300 * time.Millisecond)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				st, err := c.SessionCreate(context.Background(), &SessionRequest{M: 2, MoveBudget: 1})
				if errors.Is(err, ErrSessionTableFull) {
					continue // churn outran eviction: the bound held, retry
				}
				if err != nil {
					errs <- err
					return
				}
				for i := 0; i < 5; i++ {
					_, err := c.SessionDelta(context.Background(), st.ID, &SessionDeltaRequest{
						Op: "arrive", Job: i, Size: int64(1 + i),
					})
					if err != nil && !errors.Is(err, ErrSessionNotFound) {
						errs <- fmt.Errorf("worker %d: %w", w, err)
						return
					}
					if err != nil {
						break // evicted mid-stream: expected under this TTL
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The janitor eventually clears everything once traffic stops.
	time.Sleep(50 * time.Millisecond)
	if n := c.SessionCount(); n != 0 {
		t.Fatalf("%d sessions leaked past the TTL", n)
	}
}

// TestShutdownClosesSessions pins the drain contract: Shutdown returns
// with every session closed, and later access reports not-found.
func TestShutdownClosesSessions(t *testing.T) {
	c := New(Config{Workers: 1})
	st, err := c.SessionCreate(context.Background(), &SessionRequest{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionDelta(context.Background(), st.ID, &SessionDeltaRequest{Op: "arrive", Job: 1, Size: 5}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionGet(st.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("post-drain get: %v", err)
	}
	if n := c.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived drain", n)
	}
}
