package core

// Allocation guards for the PARTITION kernels: with a warmed solver and
// no sink, the probe, the light search wrapper, and the threshold
// ladder must not touch the heap. These pin the zero-alloc contract the
// flat rewrite exists for; any append that escapes scratch reuse or
// closure that slips into a hot loop fails here, not in a profile.

import (
	"testing"

	"repro/internal/instance"
)

func allocGuardInstance() *instance.Instance {
	return instance.MustNew(4,
		[]int64{13, 11, 9, 7, 6, 5, 4, 3, 2, 2, 1, 1},
		nil,
		[]int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 0})
}

// guardTargets spans infeasible, tight, and loose probes so the guard
// covers every probe exit path.
func guardTargets(in *instance.Instance) []int64 {
	initial := Partition(in, in.TotalSize()).Solution.Makespan
	return []int64{
		in.MaxSize() - 1, // infeasible: below the largest job
		in.MaxSize(),
		(in.TotalSize() + int64(in.M) - 1) / int64(in.M),
		initial,
		in.TotalSize(),
	}
}

func TestProbeFlatZeroAllocs(t *testing.T) {
	in := allocGuardInstance()
	s := newSolver(in, nil)
	targets := guardTargets(in)
	for _, v := range targets {
		s.probeFlat(v) // warm the scratch at every exit path
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, v := range targets {
			s.probeFlat(v)
		}
	}); n != 0 {
		t.Fatalf("probeFlat allocates %.1f per target sweep, want 0", n)
	}
}

func TestRunLightZeroAllocs(t *testing.T) {
	in := allocGuardInstance()
	s := newSolver(in, nil)
	targets := guardTargets(in)
	for _, v := range targets {
		s.runLight(v)
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, v := range targets {
			s.runLight(v)
		}
	}); n != 0 {
		t.Fatalf("runLight allocates %.1f per target sweep, want 0", n)
	}
}

func TestLadderZeroAllocs(t *testing.T) {
	in := allocGuardInstance()
	s := newSolver(in, nil)
	lo := in.MaxSize()
	hi := in.TotalSize()
	s.ladderBuf = s.ladder(lo, hi, s.ladderBuf)
	if n := testing.AllocsPerRun(100, func() {
		s.ladderBuf = s.ladder(lo, hi, s.ladderBuf)
	}); n != 0 {
		t.Fatalf("ladder allocates %.1f/op, want 0", n)
	}
}
