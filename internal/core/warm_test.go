package core

import (
	"context"
	"testing"

	"repro/internal/instance"
	"repro/internal/workload"
)

// applyRandomWarmOp mutates w with one random structural operation and
// returns false if the op was skipped (empty state).
func applyRandomWarmOp(t *testing.T, w *Warm, rng *workload.RNG) {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 4: // add
		proc := int(rng.Int63n(int64(w.M())))
		w.Add(1+rng.Int63n(60), 1+rng.Int63n(4), proc)
	case op < 6: // remove
		if w.N() > 0 {
			w.Remove(rng.Intn(w.N()))
		}
	case op < 8: // resize
		if w.N() > 0 {
			w.Resize(rng.Intn(w.N()), 1+rng.Int63n(60))
		}
	case op < 9: // move
		if w.N() > 0 {
			w.Move(rng.Intn(w.N()), int(rng.Int63n(int64(w.M()))))
		}
	default: // grow/shrink the farm
		if w.M() > 2 && rng.Intn(2) == 0 {
			p := int(rng.Int63n(int64(w.M())))
			for len(w.Row(p)) > 0 {
				j := w.Row(p)[0]
				w.Move(int(j), w.MinLoadProc(p))
			}
			w.RemoveProc(p)
		} else {
			w.AddProc()
		}
	}
}

// assertWarmMatchesCold checks the Warm equivalence contract at one
// state: loads bookkeeping, Solve vs cold MPartitionCtx, and Probe vs
// cold Partition, all on the materialized snapshot.
func assertWarmMatchesCold(t *testing.T, w *Warm, k int) {
	t.Helper()
	snap := w.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid after mutations: %v", err)
	}
	fresh := snap.Loads(snap.Assign)
	for p, l := range w.Loads(nil) {
		if l != fresh[p] {
			t.Fatalf("incremental load[%d] = %d, fresh %d", p, l, fresh[p])
		}
	}
	warmSol, err := w.Solve(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	coldSol, err := MPartitionCtx(context.Background(), snap, k, IncrementalScan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warmSol.Makespan != coldSol.Makespan || warmSol.Moves != coldSol.Moves {
		t.Fatalf("warm solve (makespan %d, moves %d) != cold (makespan %d, moves %d)",
			warmSol.Makespan, warmSol.Moves, coldSol.Makespan, coldSol.Moves)
	}
	for j := range warmSol.Assign {
		if warmSol.Assign[j] != coldSol.Assign[j] {
			t.Fatalf("warm assign[%d] = %d, cold %d", j, warmSol.Assign[j], coldSol.Assign[j])
		}
	}
	if w.N() > 0 {
		target := snap.LowerBound() + snap.InitialMakespan()/2
		warmRes := w.Probe(target)
		coldRes := Partition(snap, target)
		if warmRes.Feasible != coldRes.Feasible || warmRes.Removals != coldRes.Removals {
			t.Fatalf("warm probe (feasible %v, removals %d) != cold (feasible %v, removals %d)",
				warmRes.Feasible, warmRes.Removals, coldRes.Feasible, coldRes.Removals)
		}
		if warmRes.Feasible {
			for j := range warmRes.Solution.Assign {
				if warmRes.Solution.Assign[j] != coldRes.Solution.Assign[j] {
					t.Fatalf("probe assign[%d] differs", j)
				}
			}
		}
	}
}

// TestWarmMatchesColdUnderMutation is the core equivalence pin: after
// every random mutation the warm solver's Solve and Probe results are
// identical to rebuilding from scratch on the snapshot.
func TestWarmMatchesColdUnderMutation(t *testing.T) {
	seeds := 12
	steps := 25
	if testing.Short() {
		seeds, steps = 4, 12
	}
	for seed := 0; seed < seeds; seed++ {
		rng := workload.NewRNG(uint64(1000 + seed))
		m := 2 + rng.Intn(5)
		n := rng.Intn(30)
		sizes := make([]int64, n)
		assign := make([]int, n)
		for j := range sizes {
			sizes[j] = 1 + rng.Int63n(50)
			assign[j] = rng.Intn(m)
		}
		in, err := instance.New(m, sizes, nil, assign)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWarm(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < steps; step++ {
			applyRandomWarmOp(t, w, rng)
			assertWarmMatchesCold(t, w, rng.Intn(8))
		}
	}
}

// TestWarmEmptyAndDegenerate exercises the edges: zero jobs, one
// processor, and removal down to empty.
func TestWarmEmptyAndDegenerate(t *testing.T) {
	in, err := instance.New(1, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWarm(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol, err := w.Solve(context.Background(), 3); err != nil || sol.Makespan != 0 {
		t.Fatalf("empty solve: %v %v", sol, err)
	}
	j := w.Add(5, 1, 0)
	if j != 0 || w.Makespan() != 5 {
		t.Fatalf("add: j=%d makespan=%d", j, w.Makespan())
	}
	w.AddProc()
	w.Move(0, 1)
	if w.Load(0) != 0 || w.Load(1) != 5 {
		t.Fatalf("loads after move: %d %d", w.Load(0), w.Load(1))
	}
	w.Remove(0)
	if w.N() != 0 || w.Makespan() != 0 {
		t.Fatalf("remove: n=%d makespan=%d", w.N(), w.Makespan())
	}
	assertWarmMatchesCold(t, w, 2)
}

// TestWarmRemoveRelabels pins the swap-remove contract: the last index
// takes the removed slot.
func TestWarmRemoveRelabels(t *testing.T) {
	in := instance.MustNew(2, []int64{10, 20, 30}, nil, []int{0, 1, 0})
	w, err := NewWarm(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Remove(0) // job 2 (size 30, proc 0) must now be index 0
	if w.N() != 2 || w.JobSize(0) != 30 || w.AssignOf(0) != 0 {
		t.Fatalf("relabel failed: n=%d size0=%d proc0=%d", w.N(), w.JobSize(0), w.AssignOf(0))
	}
	if w.Load(0) != 30 || w.Load(1) != 20 {
		t.Fatalf("loads = %d,%d", w.Load(0), w.Load(1))
	}
	assertWarmMatchesCold(t, w, 1)
}
