package core

import (
	"context"
	"sort"

	"repro/internal/instance"
	"repro/internal/obs"
)

// SearchMode selects how MPartition locates its target value (§3.1).
type SearchMode int

const (
	// BinarySearch performs an integer binary search on the target value
	// between the packing lower bound and the initial makespan. It is
	// correct without monotonicity assumptions: on termination the value
	// below the returned target is infeasible, and every value ≥ OPT is
	// feasible (the paper's Lemma 4), so the returned target is ≤ OPT.
	BinarySearch SearchMode = iota
	// ThresholdScan walks the paper's discrete threshold ladder (all
	// values at which L_T, any a_i or any b_i can change) upward from
	// the lower bound, re-running PARTITION at each rung. Simple and
	// faithful to Lemma 5/6, but it materializes an O(n²) candidate
	// superset; kept as the cross-check oracle for the other modes.
	ThresholdScan
	// IncrementalScan is the paper's actual §3.1 algorithm: the same
	// ladder walked with O(log n) incremental updates of L_T and every
	// a_i, b_i, c_i per threshold, evaluating the move count k̂ directly
	// and running PARTITION only once, at the accepted target.
	IncrementalScan
)

// MPartition implements §3.1 M-PARTITION: it finds a target value V̂ no
// larger than the optimal makespan achievable with at most k moves, runs
// PARTITION against it, and returns the resulting solution. The solution
// relocates at most k jobs and has makespan at most 1.5·OPT(k).
//
// k < 0 is treated as 0. The fallback for pathological infeasibility is
// the initial assignment (always valid with 0 moves).
func MPartition(in *instance.Instance, k int, mode SearchMode) instance.Solution {
	return MPartitionObs(in, k, mode, nil)
}

// MPartitionObs is MPartition with observability: every PARTITION probe
// emits probe_start/removal/probe_result events and updates the core.*
// metrics in sink; the accepted target additionally emits a
// search_result event. A nil sink is equivalent to MPartition.
func MPartitionObs(in *instance.Instance, k int, mode SearchMode, sink *obs.Sink) instance.Solution {
	// The background context never fires, so the error is always nil.
	sol, _ := MPartitionCtx(context.Background(), in, k, mode, sink)
	return sol
}

// MPartitionCtx is MPartitionObs with a cancellable context: the target
// search polls ctx before every PARTITION probe (binary search and
// threshold-scan modes) and every batch of incremental-scan thresholds,
// returning ctx.Err() when the context is cancelled or its deadline
// expires mid-search.
func MPartitionCtx(ctx context.Context, in *instance.Instance, k int, mode SearchMode, sink *obs.Sink) (instance.Solution, error) {
	if k < 0 {
		k = 0
	}
	s := newSolver(in, sink) // sort once; every probe reuses the order
	feasible := func(v int64) (Result, bool) {
		r := s.run(v)
		return r, r.Feasible && r.Removals <= k
	}

	// finish stamps the accepted target (0 for the do-nothing fallback)
	// on the returned solution's search_result event.
	finish := func(sol instance.Solution, target int64) (instance.Solution, error) {
		if sink.Tracing() {
			sink.Emit("search_result", obs.Fields{
				"k": k, "mode": mode.String(), "target": target,
				"makespan": sol.Makespan, "moves": sol.Moves,
			})
		}
		return sol, nil
	}

	lo := in.LowerBound()
	hi := in.InitialMakespan()
	if lo >= hi {
		// The initial assignment is already optimal.
		return finish(instance.NewSolution(in, in.Assign), hi)
	}

	var best Result
	var ok bool
	switch mode {
	case ThresholdScan:
		for _, v := range thresholdLadder(in, lo, hi) {
			// Cancellation point: one probe per ladder rung.
			if err := ctx.Err(); err != nil {
				return instance.Solution{}, err
			}
			if r, good := feasible(v); good {
				best, ok = r, true
				break
			}
		}
	case IncrementalScan:
		var err error
		best, ok, err = newIncrementalScan(s).scan(ctx, k)
		if err != nil {
			return instance.Solution{}, err
		}
	default:
		// Invariant: hi is feasible (if it is — verified below), and
		// whenever lo is raised the value below it was infeasible.
		if r, good := feasible(hi); good {
			best, ok = r, true
			for lo < hi {
				// Cancellation point: one probe per bisection step.
				if err := ctx.Err(); err != nil {
					return instance.Solution{}, err
				}
				mid := lo + (hi-lo)/2
				if r, good := feasible(mid); good {
					best, hi = r, mid
				} else {
					lo = mid + 1
				}
			}
		}
	}
	if !ok {
		// Defensive: with k ≥ 0 the initial makespan is always reachable
		// with zero moves.
		return finish(instance.NewSolution(in, in.Assign), 0)
	}
	// Never return something worse than doing nothing.
	if best.Solution.Makespan >= in.InitialMakespan() {
		return finish(instance.NewSolution(in, in.Assign), 0)
	}
	return finish(best.Solution, best.Target)
}

// String names the search mode for trace events.
func (m SearchMode) String() string {
	switch m {
	case ThresholdScan:
		return "threshold"
	case IncrementalScan:
		return "incremental"
	default:
		return "binary"
	}
}

// thresholdLadder returns, sorted ascending and deduplicated, every
// candidate target in [lo, hi] at which the execution of PARTITION can
// change (Lemma 5): values 2·p_j where a job's large/small status flips,
// the per-processor remaining-total sums governing b_i, and the
// per-regime doubled remaining-small sums governing a_i; lo itself is
// included since behaviour is constant between consecutive thresholds.
//
// Complexity: the a_i family enumerates every (cutoff t, strip count r)
// pair, so a processor holding n_i jobs contributes Θ(n_i²) candidates
// — the ladder is an O(n²) superset and a full ThresholdScan costs
// O(n² log n) time in the worst case (one O(n log n)-ish PARTITION
// evaluation per rung after the O(n² log n²) sort here). That is why
// ThresholdScan is only the cross-check oracle for the other modes.
// Materialization is capped at the in-range set: every generator below
// is monotone decreasing, so candidates are appended into one
// preallocated slice only while they can still land in [lo, hi] and
// each generator breaks out as soon as its values fall below lo —
// out-of-range candidates are never stored, hashed, or iterated.
func thresholdLadder(in *instance.Instance, lo, hi int64) []int64 {
	out := make([]int64, 0, 4*in.N()+2*in.M+2)
	out = append(out, lo, hi)
	add := func(v int64) {
		if v >= lo && v <= hi {
			out = append(out, v)
		}
	}
	byProc := instance.JobsOn(in.M, in.Assign)
	for _, list := range byProc {
		sort.Slice(list, func(x, y int) bool { return in.Jobs[list[x]].Size > in.Jobs[list[y]].Size })
		var total int64
		for _, j := range list {
			total += in.Jobs[j].Size
		}
		// L_T breakpoints 2·p_j: sizes are sorted decreasing, so stop
		// once the doubled size drops below lo.
		for _, j := range list {
			v := 2 * in.Jobs[j].Size
			if v < lo {
				break
			}
			add(v)
		}
		// b_i breakpoints: remaining totals after stripping the r
		// largest jobs — strictly decreasing in r.
		rem := total
		add(rem)
		for _, j := range list {
			rem -= in.Jobs[j].Size
			if rem < lo {
				break
			}
			add(rem)
		}
		// a_i breakpoints: for each large/small cutoff position t (jobs
		// before t are large in some regime), the doubled remaining
		// small sums after stripping the r largest smalls. suffix[t] is
		// decreasing in t, and each inner walk decreases in r, so both
		// loops break at the lo boundary.
		suffix := make([]int64, len(list)+1)
		for i := len(list) - 1; i >= 0; i-- {
			suffix[i] = suffix[i+1] + in.Jobs[list[i]].Size
		}
		for t := 0; t <= len(list); t++ {
			rem := suffix[t]
			if 2*rem < lo {
				break
			}
			add(2 * rem)
			for r := t; r < len(list); r++ {
				rem -= in.Jobs[list[r]].Size
				if 2*rem < lo {
					break
				}
				add(2 * rem)
			}
		}
	}
	sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
	// In-place dedup of the sorted candidates.
	uniq := out[:1]
	for _, v := range out[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}
