package core

import (
	"context"
	"slices"

	"repro/internal/instance"
	"repro/internal/obs"
)

// SearchMode selects how MPartition locates its target value (§3.1).
type SearchMode int

const (
	// BinarySearch performs an integer binary search on the target value
	// between the packing lower bound and the initial makespan. It is
	// correct without monotonicity assumptions: on termination the value
	// below the returned target is infeasible, and every value ≥ OPT is
	// feasible (the paper's Lemma 4), so the returned target is ≤ OPT.
	BinarySearch SearchMode = iota
	// ThresholdScan walks the paper's discrete threshold ladder (all
	// values at which L_T, any a_i or any b_i can change) upward from
	// the lower bound, re-running PARTITION at each rung. Simple and
	// faithful to Lemma 5/6, but it materializes an O(n²) candidate
	// superset; kept as the cross-check oracle for the other modes.
	ThresholdScan
	// IncrementalScan is the paper's actual §3.1 algorithm: the same
	// ladder walked with O(log n) incremental updates of L_T and every
	// a_i, b_i, c_i per threshold, evaluating the move count k̂ directly
	// and running PARTITION only once, at the accepted target.
	IncrementalScan
)

// MPartition implements §3.1 M-PARTITION: it finds a target value V̂ no
// larger than the optimal makespan achievable with at most k moves, runs
// PARTITION against it, and returns the resulting solution. The solution
// relocates at most k jobs and has makespan at most 1.5·OPT(k).
//
// k < 0 is treated as 0. The fallback for pathological infeasibility is
// the initial assignment (always valid with 0 moves).
func MPartition(in *instance.Instance, k int, mode SearchMode) instance.Solution {
	return MPartitionObs(in, k, mode, nil)
}

// MPartitionObs is MPartition with observability: every PARTITION probe
// emits probe_start/removal/probe_result events and updates the core.*
// metrics in sink; the accepted target additionally emits a
// search_result event. A nil sink is equivalent to MPartition.
func MPartitionObs(in *instance.Instance, k int, mode SearchMode, sink *obs.Sink) instance.Solution {
	// The background context never fires, so the error is always nil.
	sol, _ := MPartitionCtx(context.Background(), in, k, mode, sink)
	return sol
}

// MPartitionCtx is MPartitionObs with a cancellable context: the target
// search polls ctx before every PARTITION probe (binary search and
// threshold-scan modes) and every batch of incremental-scan thresholds,
// returning ctx.Err() when the context is cancelled or its deadline
// expires mid-search.
func MPartitionCtx(ctx context.Context, in *instance.Instance, k int, mode SearchMode, sink *obs.Sink) (instance.Solution, error) {
	s := newSolver(in, sink) // sort once; every probe reuses the order
	return runMPartition(ctx, s, nil, k, mode)
}

// runMPartition is the mode-dispatched target search over an already
// built solver — shared verbatim by the cold path (MPartitionCtx) and
// the warm session path (Warm.Solve), which is what guarantees the two
// produce identical solutions for identical solver states. ic, when
// non-nil, is a caller-retained incremental scan whose buffers persist
// across calls (it is reset before use); nil builds a fresh one when
// the mode needs it.
func runMPartition(ctx context.Context, s *solver, ic *incrementalScan, k int, mode SearchMode) (instance.Solution, error) {
	if k < 0 {
		k = 0
	}
	in, sink := s.in, s.sink

	// finish stamps the accepted target (0 for the do-nothing fallback)
	// on the returned solution's search_result event.
	finish := func(sol instance.Solution, target int64) (instance.Solution, error) {
		if sink.Tracing() {
			sink.Emit("search_result", obs.Fields{
				"k": k, "mode": mode.String(), "target": target,
				"makespan": sol.Makespan, "moves": sol.Moves,
			})
		}
		return sol, nil
	}

	lo := in.LowerBound()
	hi := in.InitialMakespan()
	if lo >= hi {
		// The initial assignment is already optimal.
		return finish(instance.NewSolution(in, in.Assign), hi)
	}

	// Every search mode drives zero-alloc light probes; the accepted
	// probe's assignment is snapshotted into s.bestAssign and only the
	// final winner is materialized into an escaping Solution.
	var bestTarget, bestMakespan int64
	found := false
	accept := func(target int64) {
		found = true
		bestTarget, bestMakespan = target, s.probeMakespan
		s.bestAssign = instance.GrowSlice(s.bestAssign, len(s.assign))
		copy(s.bestAssign, s.assign)
	}
	probe := func(v int64) bool {
		return s.runLight(v) && s.lastRemovals <= k
	}

	switch mode {
	case ThresholdScan:
		s.ladderBuf = s.ladder(lo, hi, s.ladderBuf)
		for _, v := range s.ladderBuf {
			// Cancellation point: one probe per ladder rung.
			if err := ctx.Err(); err != nil {
				return instance.Solution{}, err
			}
			if probe(v) {
				accept(v)
				break
			}
		}
	case IncrementalScan:
		if ic == nil {
			ic = newIncrementalScan(s)
		}
		target, ok, err := ic.scan(ctx, k)
		if err != nil {
			return instance.Solution{}, err
		}
		if ok {
			// The accepted rung's full PARTITION run was the last probe,
			// so the solver still holds its assignment.
			accept(target)
		}
	default:
		// Invariant: hi is feasible (if it is — verified below), and
		// whenever lo is raised the value below it was infeasible.
		if probe(hi) {
			accept(hi)
			for lo < hi {
				// Cancellation point: one probe per bisection step.
				if err := ctx.Err(); err != nil {
					return instance.Solution{}, err
				}
				mid := lo + (hi-lo)/2
				if probe(mid) {
					accept(mid)
					hi = mid
				} else {
					lo = mid + 1
				}
			}
		}
	}
	if !found {
		// Defensive: with k ≥ 0 the initial makespan is always reachable
		// with zero moves.
		return finish(instance.NewSolution(in, in.Assign), 0)
	}
	// Never return something worse than doing nothing.
	if bestMakespan >= in.InitialMakespan() {
		return finish(instance.NewSolution(in, in.Assign), 0)
	}
	return finish(s.materialize(s.bestAssign), bestTarget)
}

// String names the search mode for trace events.
func (m SearchMode) String() string {
	switch m {
	case ThresholdScan:
		return "threshold"
	case IncrementalScan:
		return "incremental"
	default:
		return "binary"
	}
}

// thresholdLadder returns, sorted ascending and deduplicated, every
// candidate target in [lo, hi] at which the execution of PARTITION can
// change (Lemma 5): values 2·p_j where a job's large/small status flips,
// the per-processor remaining-total sums governing b_i, and the
// per-regime doubled remaining-small sums governing a_i; lo itself is
// included since behaviour is constant between consecutive thresholds.
func thresholdLadder(in *instance.Instance, lo, hi int64) []int64 {
	return newSolver(in, nil).ladder(lo, hi, nil)
}

// ladder is the threshold-ladder kernel: it enumerates the candidate
// set over the solver's size-sorted CSR rows and prefix sums, appending
// into dst (grown once, then reused — a warmed buffer makes the call
// allocation-free).
//
// Complexity: the a_i family enumerates every (cutoff t, strip count r)
// pair, so a processor holding n_i jobs contributes Θ(n_i²) candidates
// — the ladder is an O(n²) superset and a full ThresholdScan costs
// O(n² log n) time in the worst case (one O(n log n)-ish PARTITION
// evaluation per rung after the O(n² log n²) sort here). That is why
// ThresholdScan is only the cross-check oracle for the other modes.
// Materialization is capped at the in-range set: every generator below
// is monotone decreasing, so candidates are appended only while they
// can still land in [lo, hi] and each generator breaks out as soon as
// its values fall below lo — out-of-range candidates are never stored,
// hashed, or iterated.
func (s *solver) ladder(lo, hi int64, dst []int64) []int64 {
	out := append(dst[:0], lo, hi)
	add := func(v int64) {
		if v >= lo && v <= hi {
			out = append(out, v)
		}
	}
	sizes := s.flat.Sizes
	for p := 0; p < s.flat.M; p++ {
		row := s.csr.Row(p)
		total := s.rowTotal(p)
		// L_T breakpoints 2·p_j: sizes are sorted decreasing, so stop
		// once the doubled size drops below lo.
		for _, j := range row {
			v := 2 * sizes[j]
			if v < lo {
				break
			}
			add(v)
		}
		// b_i breakpoints: remaining totals after stripping the r
		// largest jobs — strictly decreasing in r.
		rem := total
		add(rem)
		for _, j := range row {
			rem -= sizes[j]
			if rem < lo {
				break
			}
			add(rem)
		}
		// a_i breakpoints: for each large/small cutoff position t (jobs
		// before t are large in some regime), the doubled remaining
		// small sums after stripping the r largest smalls. The suffix
		// total − prefix(t) is decreasing in t, and each inner walk
		// decreases in r, so both loops break at the lo boundary.
		for t := 0; t <= len(row); t++ {
			rem := total - s.rowPrefixSum(p, t)
			if 2*rem < lo {
				break
			}
			add(2 * rem)
			for r := t; r < len(row); r++ {
				rem -= sizes[row[r]]
				if 2*rem < lo {
					break
				}
				add(2 * rem)
			}
		}
	}
	slices.Sort(out)
	// In-place dedup of the sorted candidates.
	uniq := out[:1]
	for _, v := range out[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}
