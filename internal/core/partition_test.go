package core

import (
	"context"

	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/instance"
	"repro/internal/verify"
	"repro/internal/workload"
)

func TestPartitionRejectsImpossibleTargets(t *testing.T) {
	in := instance.MustNew(2, []int64{10, 1}, nil, []int{0, 1})
	if Partition(in, 9).Feasible {
		t.Fatal("target below the largest job accepted")
	}
	in2 := instance.MustNew(2, []int64{5, 5, 5, 5}, nil, []int{0, 0, 1, 1})
	if Partition(in2, 9).Feasible {
		t.Fatal("target below the average load accepted")
	}
	// Three large jobs, two processors: L_T > m.
	in3 := instance.MustNew(2, []int64{7, 7, 7}, nil, []int{0, 0, 1})
	if Partition(in3, 11).Feasible {
		t.Fatal("L_T > m accepted")
	}
}

func TestPartitionAtInitialMakespanMakesNoRemovals(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		in := workload.Generate(workload.Config{
			N: 30, M: 4, Sizes: workload.SizeBimodal, Placement: workload.PlaceSkewed, Seed: seed,
		})
		r := Partition(in, in.InitialMakespan())
		if !r.Feasible {
			t.Fatalf("seed %d: initial makespan infeasible", seed)
		}
		if r.Removals != 0 {
			t.Fatalf("seed %d: %d removals at V = initial makespan, want 0", seed, r.Removals)
		}
	}
}

func TestPartitionHalfOptimalBound(t *testing.T) {
	// At any feasible target, the makespan must be ≤ 1.5·target.
	for seed := uint64(0); seed < 30; seed++ {
		in := workload.Generate(workload.Config{
			N: 40, M: 5, Sizes: workload.SizeZipf, Placement: workload.PlaceRandom, Seed: seed,
		})
		for v := in.LowerBound(); v <= in.InitialMakespan(); v += (in.InitialMakespan()-in.LowerBound())/7 + 1 {
			r := Partition(in, v)
			if !r.Feasible {
				continue
			}
			if 2*r.Solution.Makespan > 3*v {
				t.Fatalf("seed %d V=%d: makespan %d > 1.5·V", seed, v, r.Solution.Makespan)
			}
			if r.Solution.Moves > r.Removals {
				t.Fatalf("seed %d V=%d: moves %d > removals %d", seed, v, r.Solution.Moves, r.Removals)
			}
			if _, err := verify.Solution(in, r.Solution.Assign); err != nil {
				t.Fatalf("seed %d V=%d: %v", seed, v, err)
			}
		}
	}
}

// The heart of the reproduction: M-PARTITION is a true 1.5-approximation
// using at most k moves, verified against the exact optimum.
func TestMPartitionApproximationGuarantee(t *testing.T) {
	for _, mode := range []SearchMode{BinarySearch, ThresholdScan} {
		for seed := uint64(0); seed < 40; seed++ {
			in := workload.Generate(workload.Config{
				N: 10, M: 3, MaxSize: 25,
				Sizes:     workload.SizeDist(seed % 3),
				Placement: workload.Placement(seed % 4),
				Seed:      seed,
			})
			for _, k := range []int{0, 1, 2, 3, 5, 10} {
				sol := MPartition(in, k, mode)
				if _, err := verify.WithinMoves(in, sol.Assign, k); err != nil {
					t.Fatalf("mode %d seed %d k %d: %v", mode, seed, k, err)
				}
				opt, err := exact.Solve(context.Background(), in, k, exact.Limits{})
				if err != nil {
					t.Fatalf("mode %d seed %d k %d: %v", mode, seed, k, err)
				}
				if 2*sol.Makespan > 3*opt.Makespan {
					t.Fatalf("mode %d seed %d k %d: makespan %d > 1.5·OPT (%d)",
						mode, seed, k, sol.Makespan, opt.Makespan)
				}
			}
		}
	}
}

func TestMPartitionTightInstance(t *testing.T) {
	// Theorem 2's tight example: PARTITION makes no moves and achieves
	// exactly 1.5·OPT.
	in := instance.PartitionTight()
	sol := MPartition(in, instance.PartitionTightK(), BinarySearch)
	if sol.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3 = 1.5·OPT", sol.Makespan)
	}
	if sol.Moves != 0 {
		t.Fatalf("moves = %d, want 0", sol.Moves)
	}
}

func TestMPartitionBeatsGreedyOnTightInstance(t *testing.T) {
	// On the Theorem 1 instance (OPT = m), M-PARTITION must stay within
	// 1.5m while adversarial GREEDY hits 2m−1.
	for _, m := range []int{4, 6, 10} {
		in := instance.GreedyTight(m)
		k := instance.GreedyTightK(m)
		sol := MPartition(in, k, BinarySearch)
		if _, err := verify.WithinMoves(in, sol.Assign, k); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if 2*sol.Makespan > 3*int64(m) {
			t.Fatalf("m=%d: makespan %d > 1.5·OPT (OPT=%d)", m, sol.Makespan, m)
		}
	}
}

func TestMPartitionZeroMoves(t *testing.T) {
	in := workload.Generate(workload.Config{N: 20, M: 3, Seed: 4, Placement: workload.PlaceSkewed})
	sol := MPartition(in, 0, BinarySearch)
	if sol.Moves != 0 || sol.Makespan != in.InitialMakespan() {
		t.Fatalf("k=0 solution %+v", sol)
	}
	sol = MPartition(in, -5, BinarySearch)
	if sol.Moves != 0 {
		t.Fatalf("negative k moved jobs: %+v", sol)
	}
}

func TestMPartitionNeverWorseThanInitial(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		in := workload.Generate(workload.Config{
			N: 50, M: 6, Sizes: workload.SizeZipf, Placement: workload.PlaceBalanced, Seed: seed,
		})
		sol := MPartition(in, 5, BinarySearch)
		if sol.Makespan > in.InitialMakespan() {
			t.Fatalf("seed %d: %d worse than initial %d", seed, sol.Makespan, in.InitialMakespan())
		}
	}
}

func TestThresholdLadderCoversBinarySearchTarget(t *testing.T) {
	// Both search modes must deliver the 1.5 guarantee; they may pick
	// different targets but neither may relocate more than k jobs.
	for seed := uint64(0); seed < 15; seed++ {
		in := workload.Generate(workload.Config{
			N: 24, M: 4, MaxSize: 50, Sizes: workload.SizeUniform,
			Placement: workload.PlaceSkewed, Seed: seed,
		})
		k := 6
		a := MPartition(in, k, BinarySearch)
		b := MPartition(in, k, ThresholdScan)
		if _, err := verify.WithinMoves(in, a.Assign, k); err != nil {
			t.Fatalf("seed %d binary: %v", seed, err)
		}
		if _, err := verify.WithinMoves(in, b.Assign, k); err != nil {
			t.Fatalf("seed %d ladder: %v", seed, err)
		}
	}
}

func TestMPartitionSingleProcessor(t *testing.T) {
	in := instance.MustNew(1, []int64{5, 3, 2}, nil, []int{0, 0, 0})
	sol := MPartition(in, 2, BinarySearch)
	if sol.Makespan != 10 || sol.Moves != 0 {
		t.Fatalf("m=1 solution %+v, want untouched makespan 10", sol)
	}
}

func TestMPartitionLargeUniform(t *testing.T) {
	// A bigger smoke test: 2000 jobs, verify constraints and improvement.
	in := workload.Generate(workload.Config{
		N: 2000, M: 16, Sizes: workload.SizeZipf, Placement: workload.PlaceSkewed, Seed: 11,
	})
	k := 200
	sol := MPartition(in, k, BinarySearch)
	if _, err := verify.WithinMoves(in, sol.Assign, k); err != nil {
		t.Fatal(err)
	}
	if sol.Makespan >= in.InitialMakespan() {
		t.Fatalf("no improvement: %d -> %d", in.InitialMakespan(), sol.Makespan)
	}
}

// Property: on arbitrary random instances the binary-search M-PARTITION
// respects k and ends within 1.5× the exact optimum.
func TestMPartitionProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		in := workload.Generate(workload.Config{
			N: 8, M: 2 + int(seed%3), MaxSize: 30,
			Sizes: workload.SizeBimodal, Placement: workload.PlaceRandom, Seed: seed,
		})
		k := int(kRaw % 9)
		sol := MPartition(in, k, BinarySearch)
		if _, err := verify.WithinMoves(in, sol.Assign, k); err != nil {
			return false
		}
		opt, err := exact.Solve(context.Background(), in, k, exact.Limits{})
		if err != nil {
			return true // skip oversized searches
		}
		return 2*sol.Makespan <= 3*opt.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
