package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestMPartitionTraceGolden pins the JSONL trace schema of a small
// M-PARTITION binary search byte-for-byte. With no Clock on the tracer
// the output is fully deterministic (map keys marshal sorted), so any
// change to event names, field names or emission order shows up here.
func TestMPartitionTraceGolden(t *testing.T) {
	in := instance.MustNew(2,
		[]int64{8, 7, 3, 2},
		[]int64{1, 1, 1, 1},
		[]int{0, 0, 0, 0})
	var buf bytes.Buffer
	sink := obs.NewTracing(obs.NewJSONL(&buf))
	MPartitionObs(in, 2, BinarySearch, sink)

	want := `{"ev":"probe_start","seq":0,"target":20}
{"ev":"probe_result","feasible":true,"large_extra":0,"large_total":0,"makespan":20,"removals":0,"seq":1,"target":20}
{"ev":"probe_start","seq":2,"target":15}
{"ev":"removal","job":1,"kind":"small","proc":0,"seq":3,"step":3,"target":15}
{"ev":"probe_result","feasible":true,"large_extra":0,"large_total":1,"makespan":13,"removals":1,"seq":4,"target":15}
{"ev":"probe_start","seq":5,"target":12}
{"ev":"removal","job":0,"kind":"large","proc":0,"seq":6,"step":1,"target":12}
{"ev":"probe_result","feasible":true,"large_extra":1,"large_total":2,"makespan":12,"removals":1,"seq":7,"target":12}
{"ev":"probe_start","seq":8,"target":11}
{"ev":"removal","job":0,"kind":"large","proc":0,"seq":9,"step":1,"target":11}
{"ev":"probe_result","feasible":true,"large_extra":1,"large_total":2,"makespan":12,"removals":1,"seq":10,"target":11}
{"ev":"probe_start","seq":11,"target":10}
{"ev":"removal","job":0,"kind":"large","proc":0,"seq":12,"step":1,"target":10}
{"ev":"probe_result","feasible":true,"large_extra":1,"large_total":2,"makespan":12,"removals":1,"seq":13,"target":10}
{"ev":"search_result","k":2,"makespan":12,"mode":"binary","moves":1,"seq":14,"target":10}
`
	if got := buf.String(); got != want {
		t.Fatalf("golden trace mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// probeEvent is the subset of trace fields the bisection replay needs.
type probeEvent struct {
	Ev       string `json:"ev"`
	Seq      int64  `json:"seq"`
	Target   int64  `json:"target"`
	Feasible bool   `json:"feasible"`
	Removals int    `json:"removals"`
}

// TestMPartitionTraceReconstructsBisection is the ISSUE acceptance
// check: trace a 1000-job M-PARTITION binary search and verify that the
// per-probe target / feasible / removals fields alone reconstruct the
// exact bisection sequence — replaying lo/hi updates from the events
// predicts every probed target.
func TestMPartitionTraceReconstructsBisection(t *testing.T) {
	in := workload.Generate(workload.Config{
		N: 1000, M: 16, Sizes: workload.SizeZipf,
		Placement: workload.PlaceSkewed, Seed: 7,
	})
	const k = 50
	var buf bytes.Buffer
	sink := obs.NewTracing(obs.NewJSONL(&buf))
	sol := MPartitionObs(in, k, BinarySearch, sink)

	// Parse the JSONL stream: every line must be valid JSON with a
	// monotone seq; collect the probe_result events in order.
	var probes []probeEvent
	var searchTarget int64 = -1
	lastSeq := int64(-1)
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev probeEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("seq jumped from %d to %d", lastSeq, ev.Seq)
		}
		lastSeq = ev.Seq
		switch ev.Ev {
		case "probe_result":
			probes = append(probes, ev)
		case "search_result":
			searchTarget = ev.Target
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(probes) < 5 {
		t.Fatalf("only %d probes traced; instance too easy to exercise the bisection", len(probes))
	}

	// Replay the binary search from the events alone. The driver probes
	// hi first; on success it bisects [lo, hi], accepting mid when the
	// probe is feasible with at most k removals.
	good := func(p probeEvent) bool { return p.Feasible && p.Removals <= k }
	lo, hi := in.LowerBound(), in.InitialMakespan()
	if probes[0].Target != hi {
		t.Fatalf("first probe at %d, want initial makespan %d", probes[0].Target, hi)
	}
	if !good(probes[0]) {
		t.Fatalf("initial-makespan probe not feasible: %+v", probes[0])
	}
	accepted := probes[0].Target
	i := 1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if i >= len(probes) {
			t.Fatalf("trace ended after %d probes but replay expects a probe at %d", len(probes), mid)
		}
		if probes[i].Target != mid {
			t.Fatalf("probe %d at target %d, replay expects %d (lo=%d hi=%d)",
				i, probes[i].Target, mid, lo, hi)
		}
		if good(probes[i]) {
			hi = mid
			accepted = mid
		} else {
			lo = mid + 1
		}
		i++
	}
	if i != len(probes) {
		t.Fatalf("replay consumed %d probes, trace has %d", i, len(probes))
	}
	if searchTarget != accepted {
		t.Fatalf("search_result target = %d, replay accepted %d", searchTarget, accepted)
	}
	if sol.Moves > k {
		t.Fatalf("solution moves %d exceed budget %d", sol.Moves, k)
	}
}

// TestPartitionTraceDisabledMatchesEnabled guards the instrumentation
// against observer effects: the solution must be identical with tracing
// on and off.
func TestPartitionTraceDisabledMatchesEnabled(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		in := workload.Generate(workload.Config{
			N: 120, M: 8, Sizes: workload.SizeBimodal,
			Placement: workload.PlaceSkewed, Seed: seed,
		})
		plain := MPartition(in, 10, BinarySearch)
		var buf bytes.Buffer
		traced := MPartitionObs(in, 10, BinarySearch, obs.NewTracing(obs.NewJSONL(&buf)))
		if plain.Makespan != traced.Makespan || plain.Moves != traced.Moves {
			t.Fatalf("seed %d: traced run diverged: %d/%d vs %d/%d",
				seed, plain.Makespan, plain.Moves, traced.Makespan, traced.Moves)
		}
		if !strings.Contains(buf.String(), `"ev":"search_result"`) {
			t.Fatalf("seed %d: trace missing search_result", seed)
		}
	}
}

// TestMPartitionMetrics checks the probe counters agree with the traced
// probe count.
func TestMPartitionMetrics(t *testing.T) {
	in := workload.Generate(workload.Config{
		N: 200, M: 8, Sizes: workload.SizeZipf,
		Placement: workload.PlaceSkewed, Seed: 3,
	})
	tr := &obs.CollectTracer{}
	sink := obs.NewTracing(tr)
	MPartitionObs(in, 20, BinarySearch, sink)
	var traced int64
	for _, ev := range tr.Events() {
		if ev.Event == "probe_result" {
			traced++
		}
	}
	snap := sink.Snapshot()
	if got := snap.Counters["core.probes"]; got != traced {
		t.Fatalf("core.probes = %d, trace saw %d probe_result events", got, traced)
	}
	if snap.Counters["core.probes_feasible"] > traced {
		t.Fatalf("feasible probes %d exceed total %d", snap.Counters["core.probes_feasible"], traced)
	}
	if h := snap.Histograms["core.probe_removals"]; h.Count != snap.Counters["core.probes_feasible"] {
		t.Fatalf("probe_removals count %d != feasible probes %d",
			h.Count, snap.Counters["core.probes_feasible"])
	}
}
