package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/instance"
	"repro/internal/workload"
)

func cancelTestInstance() *instance.Instance {
	return workload.Generate(workload.Config{
		N: 60, M: 5, MaxSize: 100, Sizes: workload.SizeZipf,
		Placement: workload.PlaceSkewed, Seed: 7,
	})
}

// TestMPartitionCtxCanceled pins that every search mode notices an
// already-canceled context before probing.
func TestMPartitionCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := cancelTestInstance()
	for _, mode := range []SearchMode{BinarySearch, ThresholdScan, IncrementalScan} {
		if _, err := MPartitionCtx(ctx, in, 10, mode, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("mode %v with canceled ctx: err = %v, want Canceled", mode, err)
		}
	}
}

// TestMPartitionCtxMatchesWrapper pins that the context plumbing did
// not change results: with a live context every mode returns exactly
// what the classic wrapper returns.
func TestMPartitionCtxMatchesWrapper(t *testing.T) {
	in := cancelTestInstance()
	for _, mode := range []SearchMode{BinarySearch, ThresholdScan, IncrementalScan} {
		want := MPartition(in, 10, mode)
		got, err := MPartitionCtx(context.Background(), in, 10, mode, nil)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if got.Makespan != want.Makespan || got.Moves != want.Moves {
			t.Errorf("mode %v: ctx variant (%d, %d) != wrapper (%d, %d)",
				mode, got.Makespan, got.Moves, want.Makespan, want.Moves)
		}
	}
}

func TestPartitionBudgetCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := cancelTestInstance()
	if _, err := PartitionBudgetCtx(ctx, in, 50, BudgetOptions{}, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("PartitionBudgetCtx with canceled ctx: err = %v, want Canceled", err)
	}
}

func TestPartitionBudgetCtxMatchesWrapper(t *testing.T) {
	in := cancelTestInstance()
	want := PartitionBudget(in, 50, BudgetOptions{})
	got, err := PartitionBudgetCtx(context.Background(), in, 50, BudgetOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan || got.MoveCost != want.MoveCost {
		t.Errorf("ctx variant (%d, %d) != wrapper (%d, %d)",
			got.Makespan, got.MoveCost, want.Makespan, want.MoveCost)
	}
}
