package core

import (
	"testing"

	"repro/internal/instance"
	"repro/internal/workload"
)

func TestResultDiagnostics(t *testing.T) {
	// Processor 0: large jobs 7, 6 (target 10 ⇒ large iff size > 5) and
	// small 2; processor 1: large 8; processor 2: smalls 3, 3.
	in := instance.MustNew(3,
		[]int64{7, 6, 2, 8, 3, 3},
		nil,
		[]int{0, 0, 0, 1, 2, 2})
	r := Partition(in, 10)
	if !r.Feasible {
		t.Fatal("feasible target rejected")
	}
	if r.LargeTotal != 3 {
		t.Fatalf("L_T = %d, want 3", r.LargeTotal)
	}
	if r.LargeExtra != 1 {
		t.Fatalf("L_E = %d, want 1 (jobs 7 and 6 share processor 0)", r.LargeExtra)
	}
	if len(r.Selected) != r.LargeTotal {
		t.Fatalf("|Selected| = %d, want L_T = %d", len(r.Selected), r.LargeTotal)
	}
	// Selected indices must be valid, sorted and unique.
	for i, p := range r.Selected {
		if p < 0 || p >= in.M {
			t.Fatalf("selected processor %d out of range", p)
		}
		if i > 0 && r.Selected[i] <= r.Selected[i-1] {
			t.Fatalf("Selected not strictly increasing: %v", r.Selected)
		}
	}
}

func TestDiagnosticsLargeCountMatchesBrute(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		in := workload.Generate(workload.Config{
			N: 30, M: 5, MaxSize: 50, Sizes: workload.SizeBimodal,
			Placement: workload.PlaceRandom, Seed: seed,
		})
		target := in.InitialMakespan()
		r := Partition(in, target)
		if !r.Feasible {
			t.Fatalf("seed %d: initial makespan infeasible", seed)
		}
		brute := 0
		for _, j := range in.Jobs {
			if 2*j.Size > target {
				brute++
			}
		}
		if r.LargeTotal != brute {
			t.Fatalf("seed %d: L_T = %d, brute count %d", seed, r.LargeTotal, brute)
		}
	}
}

func TestSolverReuseMatchesFreshRuns(t *testing.T) {
	// The prepared solver must be probe-order independent: running many
	// targets on one solver equals fresh Partition calls.
	in := workload.Generate(workload.Config{
		N: 40, M: 4, MaxSize: 60, Placement: workload.PlaceSkewed, Seed: 9,
	})
	s := newSolver(in, nil)
	for v := in.LowerBound(); v <= in.InitialMakespan(); v += 7 {
		a := s.run(v)
		b := Partition(in, v)
		if a.Feasible != b.Feasible || a.Removals != b.Removals {
			t.Fatalf("v=%d: reuse (%v,%d) != fresh (%v,%d)",
				v, a.Feasible, a.Removals, b.Feasible, b.Removals)
		}
		if a.Feasible && a.Solution.Makespan != b.Solution.Makespan {
			t.Fatalf("v=%d: makespans differ %d vs %d", v, a.Solution.Makespan, b.Solution.Makespan)
		}
	}
}
