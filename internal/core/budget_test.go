package core

import (
	"context"

	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/instance"
	"repro/internal/verify"
	"repro/internal/workload"
)

func TestPartitionBudgetAtRejectsImpossible(t *testing.T) {
	in := instance.MustNew(2, []int64{10, 1}, nil, []int{0, 1})
	if PartitionBudgetAt(in, 9, BudgetOptions{}).Feasible {
		t.Fatal("target below largest job accepted")
	}
	in3 := instance.MustNew(2, []int64{7, 7, 7}, []int64{1, 1, 1}, []int{0, 0, 1})
	if PartitionBudgetAt(in3, 11, BudgetOptions{}).Feasible {
		t.Fatal("L_T > m accepted")
	}
}

func TestPartitionBudgetAtInitialIsFree(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		in := workload.Generate(workload.Config{
			N: 25, M: 4, Sizes: workload.SizeBimodal, Costs: workload.CostRandom,
			Placement: workload.PlaceSkewed, Seed: seed,
		})
		r := PartitionBudgetAt(in, in.InitialMakespan(), BudgetOptions{})
		if !r.Feasible || r.Cost != 0 {
			t.Fatalf("seed %d: feasible=%v cost=%d at V = initial makespan", seed, r.Feasible, r.Cost)
		}
	}
}

func TestPartitionBudgetGuarantee(t *testing.T) {
	// Against the exact optimum: cost within budget, makespan within
	// 1.5·OPT (exact knapsacks on these small sizes, so no ε slack).
	for seed := uint64(0); seed < 30; seed++ {
		in := workload.Generate(workload.Config{
			N: 9, M: 3, MaxSize: 20,
			Sizes: workload.SizeUniform, Costs: workload.CostModel(seed % 4),
			Placement: workload.PlaceRandom, Seed: seed,
		})
		for _, b := range []int64{0, 3, 10, 40, 1 << 40} {
			sol := PartitionBudget(in, b, BudgetOptions{})
			if _, err := verify.WithinBudget(in, sol.Assign, b); err != nil {
				t.Fatalf("seed %d B %d: %v", seed, b, err)
			}
			opt, err := exact.SolveBudget(context.Background(), in, b, exact.Limits{})
			if err != nil {
				t.Fatalf("seed %d B %d: %v", seed, b, err)
			}
			if 2*sol.Makespan > 3*opt.Makespan {
				t.Fatalf("seed %d B %d: makespan %d > 1.5·OPT (%d)", seed, b, sol.Makespan, opt.Makespan)
			}
		}
	}
}

func TestPartitionBudgetZeroBudgetMovesOnlyFreeJobs(t *testing.T) {
	in := instance.MustNew(2, []int64{4, 3}, []int64{0, 5}, []int{0, 0})
	sol := PartitionBudget(in, 0, BudgetOptions{})
	if sol.MoveCost != 0 {
		t.Fatalf("cost = %d with zero budget", sol.MoveCost)
	}
	if sol.Makespan > 4 {
		t.Fatalf("makespan = %d; the free job should have moved", sol.Makespan)
	}
}

func TestPartitionBudgetUnitCostsMatchMPartition(t *testing.T) {
	// With unit costs and budget k, the guarantee coincides with the
	// k-move model: verify both deliver ≤ 1.5·OPT(k).
	for seed := uint64(0); seed < 15; seed++ {
		in := workload.Generate(workload.Config{
			N: 9, M: 3, MaxSize: 25, Costs: workload.CostUnit,
			Placement: workload.PlaceRandom, Seed: seed,
		})
		k := 3
		a := MPartition(in, k, BinarySearch)
		b := PartitionBudget(in, int64(k), BudgetOptions{})
		opt, err := exact.Solve(context.Background(), in, k, exact.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if 2*a.Makespan > 3*opt.Makespan || 2*b.Makespan > 3*opt.Makespan {
			t.Fatalf("seed %d: mpartition %d, budget %d, opt %d", seed, a.Makespan, b.Makespan, opt.Makespan)
		}
		if b.MoveCost > int64(k) {
			t.Fatalf("seed %d: budget variant spent %d > %d", seed, b.MoveCost, k)
		}
	}
}

func TestPartitionBudgetApproxKnapsackPath(t *testing.T) {
	// Force the rounded-size knapsack (tiny ExactWork) and confirm the
	// relaxed guarantee 1.5·(1+ε) still holds vs exact.
	const eps = 0.2
	for seed := uint64(0); seed < 15; seed++ {
		in := workload.Generate(workload.Config{
			N: 9, M: 3, MaxSize: 2000, Sizes: workload.SizeUniform,
			Costs: workload.CostAntiCorrelated, Placement: workload.PlaceSkewed, Seed: seed,
		})
		b := int64(30)
		sol := PartitionBudget(in, b, BudgetOptions{Eps: eps, ExactWork: 1})
		if _, err := verify.WithinBudget(in, sol.Assign, b); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, err := exact.SolveBudget(context.Background(), in, b, exact.Limits{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		limit := int64(1.5 * (1 + eps) * float64(opt.Makespan))
		if sol.Makespan > limit {
			t.Fatalf("seed %d: makespan %d > 1.5(1+ε)·OPT = %d", seed, sol.Makespan, limit)
		}
	}
}

func TestPartitionBudgetNeverWorseThanInitial(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		in := workload.Generate(workload.Config{
			N: 60, M: 5, Sizes: workload.SizeZipf, Costs: workload.CostProportional,
			Placement: workload.PlaceBalanced, Seed: seed,
		})
		sol := PartitionBudget(in, 100, BudgetOptions{})
		if sol.Makespan > in.InitialMakespan() {
			t.Fatalf("seed %d: %d worse than initial %d", seed, sol.Makespan, in.InitialMakespan())
		}
	}
}

// Property: arbitrary costs, arbitrary budgets — budget respected and
// the 1.5 bound holds against the exact optimum.
func TestPartitionBudgetProperty(t *testing.T) {
	f := func(seed uint64, bRaw uint16) bool {
		in := workload.Generate(workload.Config{
			N: 8, M: 3, MaxSize: 25, Costs: workload.CostRandom,
			Sizes: workload.SizeBimodal, Placement: workload.PlaceRandom, Seed: seed,
		})
		budget := int64(bRaw % 200)
		sol := PartitionBudget(in, budget, BudgetOptions{})
		if _, err := verify.WithinBudget(in, sol.Assign, budget); err != nil {
			return false
		}
		opt, err := exact.SolveBudget(context.Background(), in, budget, exact.Limits{})
		if err != nil {
			return true
		}
		return 2*sol.Makespan <= 3*opt.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
