// Warm solver state for incremental rebalancing sessions (DESIGN.md
// §15): a live instance whose per-processor rows, loads, solver
// buffers, and incremental-scan ladder state survive across mutations,
// so a re-solve after a delta skips everything that dominates a cold
// MPartition call — instance materialization and validation, the
// O(n log n) per-row sort, and every scratch allocation.
package core

import (
	"context"

	"repro/internal/instance"
	"repro/internal/obs"
)

// Warm is the incremental-session counterpart of MPartition. Mutators
// (Add, Remove, Resize, Move, AddProc, RemoveProc) maintain the
// per-processor rows in the canonical (size desc, index asc) order the
// cold solver sorts into, so Solve and Probe only rebuild the CSR view
// and prefix sums in O(n + m) before driving the shared runMPartition
// kernel.
//
// Equivalence contract: Solve and Probe produce results identical to
// the cold path — MPartitionCtx(Snapshot(), k, IncrementalScan, ·) and
// Partition(Snapshot(), target) respectively — because both drive the
// same kernel over byte-identical solver state. The session
// differential harness (internal/session) pins this after every delta.
//
// Mutators trust their arguments (indices and processors in range,
// sizes positive); the session layer owns validation. A Warm is
// confined to a single goroutine.
type Warm struct {
	in    instance.Instance
	rows  [][]int32 // per-processor job indices, (size desc, index asc)
	loads []int64
	s     *solver
	ic    *incrementalScan
}

// NewWarm builds warm solver state from a validated starting instance
// (cloned; zero jobs is fine — deltas grow it).
func NewWarm(in *instance.Instance, sink *obs.Sink) (*Warm, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	w := &Warm{}
	w.in = *in.Clone()
	w.s = newSolver(&w.in, sink) // sorts the rows once, cold
	w.ic = newIncrementalScan(w.s)
	w.rows = make([][]int32, w.in.M)
	for p := 0; p < w.in.M; p++ {
		w.rows[p] = append([]int32{}, w.s.csr.Row(p)...)
	}
	w.loads = make([]int64, w.in.M)
	for j, p := range w.in.Assign {
		w.loads[p] += w.in.Jobs[j].Size
	}
	return w, nil
}

// N returns the live job count.
func (w *Warm) N() int { return len(w.in.Jobs) }

// M returns the live processor count.
func (w *Warm) M() int { return w.in.M }

// JobSize returns the size of the job at index j.
func (w *Warm) JobSize(j int) int64 { return w.in.Jobs[j].Size }

// JobCost returns the relocation cost of the job at index j.
func (w *Warm) JobCost(j int) int64 { return w.in.Jobs[j].Cost }

// AssignOf returns the processor currently hosting the job at index j.
func (w *Warm) AssignOf(j int) int { return w.in.Assign[j] }

// Load returns processor p's current load.
func (w *Warm) Load(p int) int64 { return w.loads[p] }

// Loads copies the per-processor loads into dst (grown as needed).
func (w *Warm) Loads(dst []int64) []int64 {
	dst = instance.GrowSlice(dst, len(w.loads))
	copy(dst, w.loads)
	return dst
}

// Makespan returns the current maximum processor load.
func (w *Warm) Makespan() int64 {
	var max int64
	for _, l := range w.loads {
		if l > max {
			max = l
		}
	}
	return max
}

// TotalSize returns the summed size of all live jobs.
func (w *Warm) TotalSize() int64 {
	var t int64
	for _, l := range w.loads {
		t += l
	}
	return t
}

// LowerBound returns max(ceil(total/m), largest job) — the packing
// lower bound of the live state, in O(m) (the largest job on each
// processor heads its row).
func (w *Warm) LowerBound() int64 {
	lb := (w.TotalSize() + int64(w.in.M) - 1) / int64(w.in.M)
	for _, row := range w.rows {
		if len(row) > 0 {
			if s := w.in.Jobs[row[0]].Size; s > lb {
				lb = s
			}
		}
	}
	return lb
}

// MinLoadProc returns the lowest-indexed processor with minimum load,
// skipping processor skip (pass -1 to consider all); -1 when no
// processor qualifies.
func (w *Warm) MinLoadProc(skip int) int {
	best := -1
	for p, l := range w.loads {
		if p == skip {
			continue
		}
		if best == -1 || l < w.loads[best] {
			best = p
		}
	}
	return best
}

// Row returns processor p's job indices in (size desc, index asc)
// order. The slice is live state — callers must not hold it across a
// mutation or mutate it.
func (w *Warm) Row(p int) []int32 { return w.rows[p] }

// Snapshot materializes the current state as an independent Instance,
// jobs in internal index order — the exact instance the cold
// equivalence contract is stated against.
func (w *Warm) Snapshot() *instance.Instance { return w.in.Clone() }

// Add appends a job on processor proc and returns its index (always
// the current job count).
func (w *Warm) Add(size, cost int64, proc int) int {
	j := len(w.in.Jobs)
	w.in.Jobs = append(w.in.Jobs, instance.Job{ID: j, Size: size, Cost: cost})
	w.in.Assign = append(w.in.Assign, proc)
	w.rowInsert(proc, int32(j))
	w.loads[proc] += size
	return j
}

// Remove deletes the job at index j by swapping the last job into its
// slot: after the call the job formerly at index N()-1 lives at index
// j (callers tracking external IDs must remap), and the job count has
// shrunk by one.
func (w *Warm) Remove(j int) {
	last := len(w.in.Jobs) - 1
	w.rowDelete(w.in.Assign[j], int32(j))
	w.loads[w.in.Assign[j]] -= w.in.Jobs[j].Size
	if j != last {
		// Relabel the last job to index j: its position within its row
		// changes because the row order tie-breaks on index.
		w.rowDelete(w.in.Assign[last], int32(last))
		w.in.Jobs[j] = w.in.Jobs[last]
		w.in.Jobs[j].ID = j
		w.in.Assign[j] = w.in.Assign[last]
		w.rowInsert(w.in.Assign[j], int32(j))
	}
	w.in.Jobs = w.in.Jobs[:last]
	w.in.Assign = w.in.Assign[:last]
}

// Resize changes job j's size.
func (w *Warm) Resize(j int, size int64) {
	p := w.in.Assign[j]
	w.rowDelete(p, int32(j))
	w.loads[p] += size - w.in.Jobs[j].Size
	w.in.Jobs[j].Size = size
	w.rowInsert(p, int32(j))
}

// Move migrates job j to processor to (no-op when already there).
func (w *Warm) Move(j, to int) {
	from := w.in.Assign[j]
	if from == to {
		return
	}
	w.rowDelete(from, int32(j))
	w.in.Assign[j] = to
	w.rowInsert(to, int32(j))
	sz := w.in.Jobs[j].Size
	w.loads[from] -= sz
	w.loads[to] += sz
}

// AddProc grows the farm by one processor and returns its index.
func (w *Warm) AddProc() int {
	p := w.in.M
	w.in.M++
	w.rows = append(w.rows, nil)
	w.loads = append(w.loads, 0)
	return p
}

// RemoveProc deletes processor p, which must already be empty (the
// caller migrates its jobs off first), renumbering every processor
// above it down by one.
func (w *Warm) RemoveProc(p int) {
	copy(w.rows[p:], w.rows[p+1:])
	w.rows = w.rows[:len(w.rows)-1]
	copy(w.loads[p:], w.loads[p+1:])
	w.loads = w.loads[:len(w.loads)-1]
	w.in.M--
	for j, q := range w.in.Assign {
		if q > p {
			w.in.Assign[j] = q - 1
		}
	}
}

// Solve re-solves the current state with move budget k through the
// incremental-scan ladder, reusing every warm buffer. The returned
// solution is relative to the current assignment; it is NOT applied —
// use Move for that. Identical to MPartitionCtx(ctx, Snapshot(), k,
// IncrementalScan, sink).
func (w *Warm) Solve(ctx context.Context, k int) (instance.Solution, error) {
	w.refresh()
	return runMPartition(ctx, w.s, w.ic, k, IncrementalScan)
}

// Probe runs one PARTITION probe at a fixed target against the current
// state — the movemin bicriteria primitive (makespan ≤ 1.5·target with
// optimal move count whenever the target is reachable; see
// movemin.Bicriteria) — reusing the warm buffers. Identical to
// Partition(Snapshot(), target).
func (w *Warm) Probe(target int64) Result {
	w.refresh()
	return w.s.run(target)
}

// refresh rebuilds the solver's probe state from the maintained rows
// in O(n + m) — flat copy, CSR concatenation, prefix sums — with no
// sorting and no steady-state allocation. After it returns, the solver
// is byte-identical to newSolver(Snapshot(), sink): the rows already
// carry the (size desc, index asc) order the cold build sorts into.
func (w *Warm) refresh() {
	s := w.s
	in := &w.in
	s.in = in
	s.flat.Reset(in)
	n, m := in.N(), in.M
	s.csr.Start = instance.GrowSlice(s.csr.Start, m+1)
	s.csr.Jobs = instance.GrowSlice(s.csr.Jobs, n)
	pos := int32(0)
	for p := 0; p < m; p++ {
		s.csr.Start[p] = pos
		pos += int32(copy(s.csr.Jobs[pos:], w.rows[p]))
	}
	s.csr.Start[m] = pos
	s.rowPrefix = instance.GrowSlice(s.rowPrefix, n)
	for p := 0; p < m; p++ {
		var sum int64
		for i, j := range s.csr.Row(p) {
			sum += s.flat.Sizes[j]
			s.rowPrefix[int(s.csr.Start[p])+i] = sum
		}
	}
	s.smallSorter.Sizes = s.flat.Sizes
	// Per-probe scratch tracks the (possibly grown) dimensions. The
	// boolean scratch keeps its all-false steady-state invariant:
	// probeFlat resets every entry it sets, and fresh allocations from
	// GrowSlice come zeroed.
	s.largeCnt = instance.GrowSlice(s.largeCnt, m)
	s.aArr = instance.GrowSlice(s.aArr, m)
	s.bArr = instance.GrowSlice(s.bArr, m)
	s.cArr = instance.GrowSlice(s.cArr, m)
	s.assign = instance.GrowSlice(s.assign, n)
	s.order = instance.GrowSlice(s.order, m)
	s.selected = instance.GrowSlice(s.selected, m)
	s.loads = instance.GrowSlice(s.loads, m)
	s.removed = instance.GrowSlice(s.removed, n)
	s.heapItems = instance.GrowSlice(s.heapItems, m)
}

// rowLess is the canonical row order: size descending, index ascending
// — exactly instance.SizeDescSorter over the live sizes.
func (w *Warm) rowLess(a, b int32) bool {
	sa, sb := w.in.Jobs[a].Size, w.in.Jobs[b].Size
	if sa != sb {
		return sa > sb
	}
	return a < b
}

// rowInsert places job j into processor p's row at its sorted position.
func (w *Warm) rowInsert(p int, j int32) {
	row := w.rows[p]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if w.rowLess(row[mid], j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	row = append(row, 0)
	copy(row[lo+1:], row[lo:])
	row[lo] = j
	w.rows[p] = row
}

// rowDelete removes job j from processor p's row. j's size must still
// be the one the row was ordered under (mutate sizes only after
// deleting).
func (w *Warm) rowDelete(p int, j int32) {
	row := w.rows[p]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if w.rowLess(row[mid], j) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// row[lo] == j by the strict total order.
	copy(row[lo:], row[lo+1:])
	w.rows[p] = row[:len(row)-1]
}
