package core

import (
	"context"
	"sort"

	"repro/internal/obs"
)

// incrementalScan is the paper-faithful §3.1 M-PARTITION search: walk
// the discrete threshold values upward from the packing lower bound,
// maintaining L_T, L_E and every a_i, b_i, c_i with O(log n) work per
// threshold (Lemma 5/6), and evaluate the move count k̂ at each step
// without re-running PARTITION. The first threshold with k̂ ≤ k is the
// target; one full PARTITION pass at that value produces the solution.
//
// The threshold set per processor is exactly the paper's: the values
// 2·p_j where a job's large/small classification flips, the remaining
// totals total_i − prefix_i[q] where b_i steps (B_l in the paper), and
// the doubled remaining small loads 2·(total_i − prefix_i[q]) where a_i
// steps (A_l in the paper) — O(n) values overall.
type incrementalScan struct {
	s      *solver
	prefix [][]int64 // per processor, prefix sums of the size-sorted jobs
	total  []int64   // per processor, total load

	// Per-processor state at the current threshold.
	largeCnt []int
	a, b, c  []int

	sumB       int64
	largeTotal int // L_T
	largeProcs int // processors holding ≥1 large job
}

func newIncrementalScan(s *solver) *incrementalScan {
	m := s.in.M
	ic := &incrementalScan{
		s:        s,
		prefix:   make([][]int64, m),
		total:    make([]int64, m),
		largeCnt: make([]int, m),
		a:        make([]int, m),
		b:        make([]int, m),
		c:        make([]int, m),
	}
	for p := 0; p < m; p++ {
		list := s.byProc[p]
		pf := make([]int64, len(list)+1)
		for i, j := range list {
			pf[i+1] = pf[i] + s.in.Jobs[j].Size
		}
		ic.prefix[p] = pf
		ic.total[p] = pf[len(list)]
	}
	return ic
}

// refresh recomputes processor p's state for threshold v in O(log n_p)
// via binary searches over the prefix sums.
func (ic *incrementalScan) refresh(p int, v int64) {
	list := ic.s.byProc[p]
	pf := ic.prefix[p]
	jobs := ic.s.in.Jobs

	// Large jobs are the prefix with 2·size > v.
	t := sort.Search(len(list), func(i int) bool { return 2*jobs[list[i]].Size <= v })

	// b_p: smallest q with total − prefix[q] ≤ v (strip largest first;
	// the retained large job is the largest, matching prefix order).
	// Note b counts removals from the post-Step-1 configuration, whose
	// load is total − (extra large jobs); the extras are jobs
	// list[0..t-2] when t ≥ 1... — the paper's b_i applies after Step 1,
	// so strip the extra-large prefix sum first.
	var extra int64
	if t >= 1 {
		extra = pf[t-1] // sizes of all large jobs except the smallest
	}
	adjTotal := ic.total[p] - extra
	// Removal order after Step 1: the kept large (index t−1), then the
	// smalls (indices ≥ t). Removing q jobs removes prefix[t−1+q] −
	// prefix[t−1] of load when t ≥ 1, or prefix[q] when t = 0.
	base := 0
	if t >= 1 {
		base = t - 1
	}
	nAfter := len(list) - base
	b := sort.Search(nAfter, func(q int) bool {
		return adjTotal-(pf[base+q]-pf[base]) <= v
	})

	// a_p: smallest r with 2·(smallTotal − topSmallSum_r) ≤ v, i.e.
	// smallest q ≥ t with 2·(total − prefix[q]) ≤ v, minus t.
	aq := t + sort.Search(len(list)-t, func(q int) bool {
		return 2*(ic.total[p]-pf[t+q]) <= v
	})
	a := aq - t

	// Apply the diffs to the aggregates.
	oldLarge := ic.largeCnt[p]
	ic.largeTotal += t - oldLarge
	if oldLarge > 0 && t == 0 {
		ic.largeProcs--
	} else if oldLarge == 0 && t > 0 {
		ic.largeProcs++
	}
	ic.sumB += int64(b - ic.b[p])
	ic.largeCnt[p] = t
	ic.a[p] = a
	ic.b[p] = b
	ic.c[p] = a - b
}

// moves evaluates k̂ at the current threshold: L_E plus the a_i of the
// L_T processors with the smallest c_i (large-holders preferred on
// ties) plus the b_i of the rest — equivalently Σb + Σ_selected c + L_E.
func (ic *incrementalScan) moves() (int64, bool) {
	m := ic.s.in.M
	if ic.largeTotal > m {
		return 0, false
	}
	order := make([]int, m)
	for p := range order {
		order[p] = p
	}
	sort.Slice(order, func(x, y int) bool {
		px, py := order[x], order[y]
		if ic.c[px] != ic.c[py] {
			return ic.c[px] < ic.c[py]
		}
		hx, hy := ic.largeCnt[px] > 0, ic.largeCnt[py] > 0
		if hx != hy {
			return hx
		}
		return px < py
	})
	k := ic.sumB + int64(ic.largeTotal-ic.largeProcs) // Σb + L_E
	for i := 0; i < ic.largeTotal; i++ {
		k += int64(ic.c[order[i]])
	}
	return k, true
}

// scan walks the thresholds and returns the first PARTITION result
// using at most k moves, or ok=false if none exists (cannot happen for
// k ≥ 0, since the initial makespan needs zero moves). The walk polls
// ctx every 256 threshold groups and aborts with ctx.Err() when it
// fires.
func (ic *incrementalScan) scan(ctx context.Context, k int) (Result, bool, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, false, err
	}
	in := ic.s.in
	lo, hi := in.LowerBound(), in.InitialMakespan()

	// Collect events: (threshold, processor). Each processor contributes
	// its 2·p_j flips, its remaining-total steps, and its doubled
	// remaining-small steps.
	type event struct {
		v    int64
		proc int
	}
	var events []event
	for p := 0; p < in.M; p++ {
		list := ic.s.byProc[p]
		pf := ic.prefix[p]
		for i, j := range list {
			add := func(v int64) {
				if v > lo && v <= hi {
					events = append(events, event{v, p})
				}
			}
			add(2 * in.Jobs[j].Size)
			add(ic.total[p] - pf[i+1])
			add(2 * (ic.total[p] - pf[i+1]))
			// Also the no-removal boundaries.
			if i == 0 {
				add(ic.total[p])
				add(2 * ic.total[p])
			}
		}
	}
	sort.Slice(events, func(x, y int) bool { return events[x].v < events[y].v })

	// Initialize every processor at the lower bound.
	for p := 0; p < in.M; p++ {
		ic.refresh(p, lo)
	}
	try := func(v int64) (Result, bool) {
		if v < in.MaxSize() || v*int64(in.M) < in.TotalSize() {
			return Result{}, false
		}
		khat, ok := ic.moves()
		if ic.s.sink != nil {
			ic.s.sink.Count("core.scan_thresholds", 1)
			if ic.s.sink.Tracing() {
				ic.s.sink.Emit("threshold", obs.Fields{"target": v, "khat": khat, "feasible": ok && khat <= int64(k)})
			}
		}
		if !ok || khat > int64(k) {
			return Result{}, false
		}
		r := ic.s.run(v)
		if !r.Feasible || r.Removals > k {
			// k̂ and the full run agree by construction; treat any
			// divergence as infeasible rather than returning an
			// over-budget solution.
			return Result{}, false
		}
		return r, true
	}
	if r, ok := try(lo); ok {
		return r, true, nil
	}
	var groups int
	for i := 0; i < len(events); {
		if groups++; groups&255 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, false, err
			}
		}
		v := events[i].v
		for ; i < len(events) && events[i].v == v; i++ {
			ic.refresh(events[i].proc, v)
		}
		if r, ok := try(v); ok {
			return r, true, nil
		}
	}
	// The initial makespan itself (zero moves) as the final rung.
	for p := 0; p < in.M; p++ {
		ic.refresh(p, hi)
	}
	if r, ok := try(hi); ok {
		return r, true, nil
	}
	return Result{}, false, nil
}
