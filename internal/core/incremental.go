package core

import (
	"context"
	"sort"

	"repro/internal/instance"
	"repro/internal/obs"
)

// incrementalScan is the paper-faithful §3.1 M-PARTITION search: walk
// the discrete threshold values upward from the packing lower bound,
// maintaining L_T, L_E and every a_i, b_i, c_i with O(log n) work per
// threshold (Lemma 5/6), and evaluate the move count k̂ at each step
// without re-running PARTITION. The first threshold with k̂ ≤ k is the
// target; one full PARTITION pass at that value produces the solution.
//
// The threshold set per processor is exactly the paper's: the values
// 2·p_j where a job's large/small classification flips, the remaining
// totals total_i − prefix_i[q] where b_i steps (B_l in the paper), and
// the doubled remaining small loads 2·(total_i − prefix_i[q]) where a_i
// steps (A_l in the paper) — O(n) values overall.
//
// State lives in flat int32 arrays sized once at construction; the
// per-threshold work (refresh + moves) allocates nothing — the binary
// searches are hand-rolled so no closure escapes, and the k̂ selection
// sorts a reused order buffer with a concrete sorter.
type incrementalScan struct {
	s *solver

	// Per-processor state at the current threshold.
	largeCnt []int32
	a, b, c  []int32

	sumB       int64
	largeTotal int // L_T
	largeProcs int // processors holding ≥1 large job

	order  []int32 // k̂ selection scratch
	sorter procCSorter
	events []scanEvent
}

// scanEvent is one (threshold, processor) refresh trigger.
type scanEvent struct {
	v    int64
	proc int32
}

func newIncrementalScan(s *solver) *incrementalScan {
	ic := &incrementalScan{s: s}
	ic.reset()
	return ic
}

// reset sizes the per-processor state for the solver's current
// processor count and zeroes it along with the aggregates. scan calls
// it on entry, so a scan retained across solves of a mutating instance
// (core.Warm) starts from exactly the state a freshly constructed one
// would — the refresh diffs below are only correct when the aggregates
// are consistent with the per-processor arrays.
func (ic *incrementalScan) reset() {
	m := ic.s.in.M
	ic.largeCnt = instance.GrowSlice(ic.largeCnt, m)
	ic.a = instance.GrowSlice(ic.a, m)
	ic.b = instance.GrowSlice(ic.b, m)
	ic.c = instance.GrowSlice(ic.c, m)
	ic.order = instance.GrowSlice(ic.order, m)
	for p := 0; p < m; p++ {
		ic.largeCnt[p], ic.a[p], ic.b[p], ic.c[p] = 0, 0, 0, 0
	}
	ic.sumB, ic.largeTotal, ic.largeProcs = 0, 0, 0
}

// refresh recomputes processor p's state for threshold v in O(log n_p)
// via binary searches over the row prefix sums.
func (ic *incrementalScan) refresh(p int, v int64) {
	s := ic.s
	row := s.csr.Row(p)
	sizes := s.flat.Sizes
	n := len(row)

	// Large jobs are the prefix with 2·size > v: find the first index
	// whose doubled size is ≤ v (sizes decrease along the row).
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if 2*sizes[row[mid]] <= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	t := lo

	// b_p: smallest q with total − prefix[q] ≤ v (strip largest first;
	// the retained large job is the largest, matching prefix order).
	// b counts removals from the post-Step-1 configuration, whose load
	// is total − (extra large jobs); the extras are jobs row[0..t-2]
	// when t ≥ 1 — the paper's b_i applies after Step 1, so strip the
	// extra-large prefix sum first.
	var extra int64
	base := 0
	if t >= 1 {
		extra = s.rowPrefixSum(p, t-1) // sizes of all large jobs except the smallest
		base = t - 1
	}
	total := s.rowTotal(p)
	adjTotal := total - extra
	baseSum := s.rowPrefixSum(p, base)
	// Removal order after Step 1: the kept large (index t−1), then the
	// smalls (indices ≥ t). Removing q jobs removes prefix[base+q] −
	// prefix[base] of load.
	lo, hi = 0, n-base
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if adjTotal-(s.rowPrefixSum(p, base+mid)-baseSum) <= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	b := lo

	// a_p: smallest r with 2·(smallTotal − topSmallSum_r) ≤ v, i.e.
	// smallest q ≥ t with 2·(total − prefix[q]) ≤ v, minus t.
	lo, hi = 0, n-t
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if 2*(total-s.rowPrefixSum(p, t+mid)) <= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	a := lo

	// Apply the diffs to the aggregates.
	oldLarge := int(ic.largeCnt[p])
	ic.largeTotal += t - oldLarge
	if oldLarge > 0 && t == 0 {
		ic.largeProcs--
	} else if oldLarge == 0 && t > 0 {
		ic.largeProcs++
	}
	ic.sumB += int64(b - int(ic.b[p]))
	ic.largeCnt[p] = int32(t)
	ic.a[p] = int32(a)
	ic.b[p] = int32(b)
	ic.c[p] = int32(a - b)
}

// moves evaluates k̂ at the current threshold: L_E plus the a_i of the
// L_T processors with the smallest c_i (large-holders preferred on
// ties) plus the b_i of the rest — equivalently Σb + Σ_selected c + L_E.
func (ic *incrementalScan) moves() (int64, bool) {
	m := ic.s.in.M
	if ic.largeTotal > m {
		return 0, false
	}
	order := ic.order
	for p := range order {
		order[p] = int32(p)
	}
	ic.sorter = procCSorter{order: order, c: ic.c, largeCnt: ic.largeCnt}
	sort.Sort(&ic.sorter)
	k := ic.sumB + int64(ic.largeTotal-ic.largeProcs) // Σb + L_E
	for i := 0; i < ic.largeTotal; i++ {
		k += int64(ic.c[order[i]])
	}
	return k, true
}

// scan walks the thresholds and returns the first accepted target whose
// PARTITION run uses at most k moves, or ok=false if none exists
// (cannot happen for k ≥ 0, since the initial makespan needs zero
// moves). The accepted run is the solver's last probe, so the caller
// can snapshot its assignment directly. The walk polls ctx every 256
// threshold groups and aborts with ctx.Err() when it fires.
func (ic *incrementalScan) scan(ctx context.Context, k int) (int64, bool, error) {
	if err := ctx.Err(); err != nil {
		return 0, false, err
	}
	ic.reset()
	s := ic.s
	in := s.in
	lo, hi := in.LowerBound(), in.InitialMakespan()

	// Collect events: (threshold, processor). Each processor contributes
	// its 2·p_j flips, its remaining-total steps, and its doubled
	// remaining-small steps.
	events := ic.events[:0]
	sizes := s.flat.Sizes
	for p := 0; p < in.M; p++ {
		row := s.csr.Row(p)
		total := s.rowTotal(p)
		add := func(v int64) {
			if v > lo && v <= hi {
				events = append(events, scanEvent{v, int32(p)})
			}
		}
		for i, j := range row {
			add(2 * sizes[j])
			rem := total - s.rowPrefixSum(p, i+1)
			add(rem)
			add(2 * rem)
			// Also the no-removal boundaries.
			if i == 0 {
				add(total)
				add(2 * total)
			}
		}
	}
	ic.events = events
	sort.Slice(events, func(x, y int) bool { return events[x].v < events[y].v })

	// Initialize every processor at the lower bound.
	for p := 0; p < in.M; p++ {
		ic.refresh(p, lo)
	}
	try := func(v int64) bool {
		if v < s.flat.Max || v*int64(in.M) < s.flat.Total {
			return false
		}
		khat, ok := ic.moves()
		if s.sink != nil {
			s.sink.Count("core.scan_thresholds", 1)
			if s.sink.Tracing() {
				s.sink.Emit("threshold", obs.Fields{"target": v, "khat": khat, "feasible": ok && khat <= int64(k)})
			}
		}
		if !ok || khat > int64(k) {
			return false
		}
		if !s.runLight(v) || s.lastRemovals > k {
			// k̂ and the full run agree by construction; treat any
			// divergence as infeasible rather than returning an
			// over-budget solution.
			return false
		}
		return true
	}
	if try(lo) {
		return lo, true, nil
	}
	var groups int
	for i := 0; i < len(events); {
		if groups++; groups&255 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, false, err
			}
		}
		v := events[i].v
		for ; i < len(events) && events[i].v == v; i++ {
			ic.refresh(int(events[i].proc), v)
		}
		if try(v) {
			return v, true, nil
		}
	}
	// The initial makespan itself (zero moves) as the final rung.
	for p := 0; p < in.M; p++ {
		ic.refresh(p, hi)
	}
	if try(hi) {
		return hi, true, nil
	}
	return 0, false, nil
}
