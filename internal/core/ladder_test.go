package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/instance"
	"repro/internal/workload"
)

// ladderReference recomputes the threshold ladder the pre-optimization
// way: every candidate from every family goes through a map with a
// range filter, no early breaks, then the in-range keys are sorted.
// thresholdLadder must return exactly this set — the early breaks and
// the append-sort-dedup pipeline are allowed to change cost, never
// content.
func ladderReference(in *instance.Instance, lo, hi int64) []int64 {
	set := map[int64]bool{lo: true, hi: true}
	add := func(v int64) {
		if v >= lo && v <= hi {
			set[v] = true
		}
	}
	byProc := instance.JobsOn(in.M, in.Assign)
	for _, list := range byProc {
		sort.Slice(list, func(x, y int) bool { return in.Jobs[list[x]].Size > in.Jobs[list[y]].Size })
		var total int64
		for _, j := range list {
			total += in.Jobs[j].Size
			add(2 * in.Jobs[j].Size)
		}
		rem := total
		add(rem)
		for _, j := range list {
			rem -= in.Jobs[j].Size
			add(rem)
		}
		suffix := make([]int64, len(list)+1)
		for i := len(list) - 1; i >= 0; i-- {
			suffix[i] = suffix[i+1] + in.Jobs[list[i]].Size
		}
		for t := 0; t <= len(list); t++ {
			rem := suffix[t]
			add(2 * rem)
			for r := t; r < len(list); r++ {
				rem -= in.Jobs[list[r]].Size
				add(2 * rem)
			}
		}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
	return out
}

func TestThresholdLadderMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		in := workload.Generate(workload.Config{
			N: 40, M: 5, MaxSize: 200, Sizes: workload.SizeZipf,
			Placement: workload.PlaceSkewed, Seed: seed,
		})
		lb, im := in.LowerBound(), in.InitialMakespan()
		ranges := [][2]int64{
			{lb, im},           // the real search window
			{0, 2 * im},        // everything in range
			{im / 2, im/2 + 1}, // nearly empty window
			{im, im},           // degenerate lo == hi
		}
		for _, r := range ranges {
			got := thresholdLadder(in, r[0], r[1])
			want := ladderReference(in, r[0], r[1])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d [%d,%d]: ladder has %d rungs, reference %d\ngot  %v\nwant %v",
					seed, r[0], r[1], len(got), len(want), got, want)
			}
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("seed=%d: ladder not strictly increasing at %d: %v", seed, i, got)
				}
			}
		}
	}
}
