package core

import (
	"context"

	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/instance"
	"repro/internal/verify"
	"repro/internal/workload"
)

// The incremental scan must pick the same target as the materialized
// ladder — both walk the identical threshold set and accept the first
// rung whose move count fits.
func TestIncrementalMatchesNaiveLadder(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		in := workload.Generate(workload.Config{
			N: 25, M: 2 + int(seed%4), MaxSize: 60,
			Sizes:     workload.SizeDist(seed % 3),
			Placement: workload.Placement(seed % 4),
			Seed:      seed,
		})
		for _, k := range []int{0, 1, 3, 8} {
			naive := MPartition(in, k, ThresholdScan)
			inc := MPartition(in, k, IncrementalScan)
			if naive.Makespan != inc.Makespan {
				t.Fatalf("seed %d k %d: naive makespan %d, incremental %d",
					seed, k, naive.Makespan, inc.Makespan)
			}
			if naive.Moves != inc.Moves {
				t.Fatalf("seed %d k %d: naive moves %d, incremental %d",
					seed, k, naive.Moves, inc.Moves)
			}
		}
	}
}

// k̂ evaluated incrementally must equal the removals of a full PARTITION
// run at the same threshold.
func TestIncrementalMoveCountAgreesWithRun(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		in := workload.Generate(workload.Config{
			N: 20, M: 4, MaxSize: 40, Sizes: workload.SizeBimodal,
			Placement: workload.PlaceRandom, Seed: seed,
		})
		s := newSolver(in, nil)
		ic := newIncrementalScan(s)
		for v := in.LowerBound(); v <= in.InitialMakespan(); v++ {
			for p := 0; p < in.M; p++ {
				ic.refresh(p, v)
			}
			r := s.run(v)
			khat, ok := ic.moves()
			if !r.Feasible {
				// run may also reject on the packing bounds that moves()
				// does not check; only compare when both are live.
				if ok && v >= in.MaxSize() && v*int64(in.M) >= in.TotalSize() {
					t.Fatalf("seed %d v %d: run infeasible but k̂ = %d", seed, v, khat)
				}
				continue
			}
			if !ok || khat != int64(r.Removals) {
				t.Fatalf("seed %d v %d: k̂ = %d (ok=%v), run removals = %d",
					seed, v, khat, ok, r.Removals)
			}
		}
	}
}

func TestIncrementalGuarantee(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		in := workload.Generate(workload.Config{
			N: 10, M: 3, MaxSize: 25, Placement: workload.PlaceRandom, Seed: seed,
		})
		for _, k := range []int{0, 2, 5} {
			sol := MPartition(in, k, IncrementalScan)
			if _, err := verify.WithinMoves(in, sol.Assign, k); err != nil {
				t.Fatalf("seed %d k %d: %v", seed, k, err)
			}
			opt, err := exact.Solve(context.Background(), in, k, exact.Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if 2*sol.Makespan > 3*opt.Makespan {
				t.Fatalf("seed %d k %d: %d > 1.5·OPT (%d)", seed, k, sol.Makespan, opt.Makespan)
			}
		}
	}
}

func TestIncrementalTightInstances(t *testing.T) {
	in := instance.PartitionTight()
	sol := MPartition(in, instance.PartitionTightK(), IncrementalScan)
	if sol.Makespan != 3 || sol.Moves != 0 {
		t.Fatalf("tight instance: %+v", sol)
	}
	for _, m := range []int{4, 8} {
		g := instance.GreedyTight(m)
		sol := MPartition(g, instance.GreedyTightK(m), IncrementalScan)
		if 2*sol.Makespan > 3*int64(m) {
			t.Fatalf("m=%d: %d > 1.5·OPT", m, sol.Makespan)
		}
	}
}

// Property: the incremental mode equals the binary search mode in
// makespan whenever both find the same target class (they may differ —
// binary search can stop at a non-threshold integer — but both must
// obey the bound and budget).
func TestIncrementalProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		in := workload.Generate(workload.Config{
			N: 12, M: 3, MaxSize: 30, Placement: workload.PlaceSkewed, Seed: seed,
		})
		k := int(kRaw % 13)
		inc := MPartition(in, k, IncrementalScan)
		if _, err := verify.WithinMoves(in, inc.Assign, k); err != nil {
			return false
		}
		bin := MPartition(in, k, BinarySearch)
		// Both are 1.5-approximations of the same optimum; sanity: they
		// are within 1.5× of each other.
		return 2*inc.Makespan <= 3*bin.Makespan && 2*bin.Makespan <= 3*inc.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
