package core

import (
	"testing"

	"repro/internal/instance"
	"repro/internal/verify"
)

// fuzzInstance builds a valid instance directly from raw fuzz bytes:
// each byte is one job (size 1–64, processor from the low bits).
func fuzzInstance(mRaw uint8, raw []byte) *instance.Instance {
	m := int(mRaw%6) + 1
	if len(raw) == 0 {
		raw = []byte{1}
	}
	if len(raw) > 48 {
		raw = raw[:48]
	}
	sizes := make([]int64, len(raw))
	assign := make([]int, len(raw))
	for i, b := range raw {
		sizes[i] = int64(b%64) + 1
		assign[i] = int(b>>6) % m
	}
	return instance.MustNew(m, sizes, nil, assign)
}

// FuzzMPartitionInvariants checks on arbitrary inputs that M-PARTITION
// (both search modes) returns a verified assignment within the move
// budget, never worse than the initial makespan, and at least the
// packing lower bound.
func FuzzMPartitionInvariants(f *testing.F) {
	f.Add(uint8(3), uint8(2), []byte{5, 9, 2, 200, 17})
	f.Add(uint8(1), uint8(0), []byte{255})
	f.Add(uint8(5), uint8(9), []byte{1, 1, 1, 1, 1, 1, 1, 64, 128, 192})
	f.Add(uint8(2), uint8(1), []byte{90, 90, 90})
	f.Fuzz(func(t *testing.T, mRaw, kRaw uint8, raw []byte) {
		in := fuzzInstance(mRaw, raw)
		k := int(kRaw % 16)
		for _, mode := range []SearchMode{BinarySearch, ThresholdScan} {
			sol := MPartition(in, k, mode)
			if _, err := verify.WithinMoves(in, sol.Assign, k); err != nil {
				t.Fatalf("mode %d: %v", mode, err)
			}
			if sol.Makespan > in.InitialMakespan() {
				t.Fatalf("mode %d: %d worse than initial %d", mode, sol.Makespan, in.InitialMakespan())
			}
			if sol.Makespan < in.LowerBound() {
				t.Fatalf("mode %d: %d below lower bound %d", mode, sol.Makespan, in.LowerBound())
			}
		}
	})
}

// FuzzPartitionBudgetInvariants does the same for the §3.2 variant with
// byte-derived costs.
func FuzzPartitionBudgetInvariants(f *testing.F) {
	f.Add(uint8(3), uint16(10), []byte{5, 9, 2, 200, 17})
	f.Add(uint8(2), uint16(0), []byte{90, 90, 90})
	f.Add(uint8(4), uint16(999), []byte{7, 6, 5, 4, 3, 2, 1})
	f.Fuzz(func(t *testing.T, mRaw uint8, bRaw uint16, raw []byte) {
		if len(raw) == 0 {
			raw = []byte{1}
		}
		in := fuzzInstance(mRaw, raw)
		// Derive costs from the bytes too (offset so they differ from sizes).
		for j := range in.Jobs {
			in.Jobs[j].Cost = int64(raw[j%len(raw)]%32) + 1
		}
		budget := int64(bRaw % 512)
		sol := PartitionBudget(in, budget, BudgetOptions{})
		if _, err := verify.WithinBudget(in, sol.Assign, budget); err != nil {
			t.Fatal(err)
		}
		if sol.Makespan > in.InitialMakespan() {
			t.Fatalf("%d worse than initial %d", sol.Makespan, in.InitialMakespan())
		}
	})
}
