package core

import (
	"testing"

	"repro/internal/instance"
	"repro/internal/workload"
)

// Fact 1 of the paper: in any solution PARTITION produces at a feasible
// target, no processor holds two target-large jobs.
func TestFact1AtMostOneLargePerProcessor(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		in := workload.Generate(workload.Config{
			N: 30, M: 5, MaxSize: 60, Sizes: workload.SizeBimodal,
			Placement: workload.PlaceRandom, Seed: seed,
		})
		for v := in.LowerBound(); v <= in.InitialMakespan(); v += (in.InitialMakespan()-in.LowerBound())/9 + 1 {
			r := Partition(in, v)
			if !r.Feasible {
				continue
			}
			largeOn := make([]int, in.M)
			for j, p := range r.Solution.Assign {
				if 2*in.Jobs[j].Size > v {
					largeOn[p]++
				}
			}
			for p, cnt := range largeOn {
				if cnt > 1 {
					t.Fatalf("seed %d V=%d: processor %d holds %d large jobs", seed, v, p, cnt)
				}
			}
		}
	}
}

// Half-optimal structure: after a feasible run, the selected processors
// (Diag.Selected) end with load ≤ 1.5·V and the rest with load ≤ 1.5·V
// as well (non-selected may receive Step 6 smalls atop their ≤ V core).
func TestHalfOptimalLoadStructure(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		in := workload.Generate(workload.Config{
			N: 25, M: 4, MaxSize: 50, Sizes: workload.SizeZipf,
			Placement: workload.PlaceSkewed, Seed: seed,
		})
		v := in.LowerBound() + (in.InitialMakespan()-in.LowerBound())/2
		r := Partition(in, v)
		if !r.Feasible {
			continue
		}
		loads := in.Loads(r.Solution.Assign)
		for p, l := range loads {
			if 2*l > 3*v {
				t.Fatalf("seed %d V=%d: processor %d load %d > 1.5·V", seed, v, p, l)
			}
		}
		if len(r.Selected) != r.LargeTotal {
			t.Fatalf("seed %d: |Selected| %d != L_T %d", seed, len(r.Selected), r.LargeTotal)
		}
	}
}

// The paper's Step 1 count: L_E equals the number of large jobs beyond
// the first on each processor of the initial assignment.
func TestLargeExtraCount(t *testing.T) {
	in := instance.MustNew(3,
		[]int64{10, 9, 8, 2, 7, 1},
		nil,
		[]int{0, 0, 0, 1, 2, 2})
	// Target 14: large iff size > 7 → {10, 9, 8} on processor 0.
	r := Partition(in, 14)
	if !r.Feasible {
		t.Fatal("feasible target rejected")
	}
	if r.LargeTotal != 3 || r.LargeExtra != 2 {
		t.Fatalf("L_T=%d L_E=%d, want 3 and 2", r.LargeTotal, r.LargeExtra)
	}
}
