package core

import (
	"container/heap"
	"context"
	"sort"

	"repro/internal/instance"
	"repro/internal/knapsack"
	"repro/internal/obs"
)

// BudgetOptions tunes the §3.2 arbitrary-cost algorithm.
type BudgetOptions struct {
	// Eps is the knapsack relaxation parameter. When a processor's exact
	// keep-knapsack DP would exceed ExactWork, the rounded-size DP with
	// this slack is used instead, and the final guarantee degrades from
	// 1.5 to 1.5·(1+Eps). Default 0.1.
	Eps float64
	// ExactWork caps the O(n·cap) work of one exact knapsack call.
	// Default 4e6.
	ExactWork int64
}

func (o *BudgetOptions) defaults() {
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.ExactWork <= 0 {
		o.ExactWork = 4e6
	}
}

// BudgetResult is the outcome of one arbitrary-cost PARTITION run at a
// fixed target makespan.
type BudgetResult struct {
	Feasible bool
	Target   int64
	// Cost is the total relocation cost of the removals the run
	// performs; by the paper's Lemma 7 it never exceeds the cost an
	// optimal solution of makespan ≤ Target incurs.
	Cost     int64
	Solution instance.Solution
}

// PartitionBudgetAt runs the §3.2 variant against a fixed target
// makespan: relocation costs are arbitrary, a_i/b_i become minimum-cost
// removals computed by knapsack, and the most costly large job is the
// one retained. The produced solution has makespan at most
// 1.5·(1+Eps)·target whenever target ≥ OPT, at relocation cost ≤ Cost.
func PartitionBudgetAt(in *instance.Instance, target int64, opts BudgetOptions) BudgetResult {
	return PartitionBudgetAtObs(in, target, opts, nil)
}

// PartitionBudgetAtObs is PartitionBudgetAt with observability: probe
// events and the core.budget_* / core.knapsack_* metrics flow into
// sink. A nil sink is equivalent to PartitionBudgetAt.
func PartitionBudgetAtObs(in *instance.Instance, target int64, opts BudgetOptions, sink *obs.Sink) BudgetResult {
	if sink == nil {
		return partitionBudgetAt(in, target, opts, nil)
	}
	sink.Count("core.budget_probes", 1)
	if sink.Tracing() {
		sink.Emit("probe_start", obs.Fields{"target": target, "budgeted": true})
	}
	res := partitionBudgetAt(in, target, opts, sink)
	if res.Feasible {
		sink.Count("core.budget_probes_feasible", 1)
		sink.Observe("core.budget_probe_cost", res.Cost)
	}
	if sink.Tracing() {
		f := obs.Fields{"target": target, "budgeted": true, "feasible": res.Feasible}
		if res.Feasible {
			f["cost"] = res.Cost
			f["makespan"] = res.Solution.Makespan
		}
		sink.Emit("probe_result", f)
	}
	return res
}

func partitionBudgetAt(in *instance.Instance, target int64, opts BudgetOptions, sink *obs.Sink) BudgetResult {
	opts.defaults()
	res := BudgetResult{Target: target}
	if target < in.MaxSize() || target*int64(in.M) < in.TotalSize() {
		return res
	}

	jobs := in.Jobs
	isLarge := func(j int) bool { return 2*jobs[j].Size > target }

	type pstate struct {
		larges, smalls []int // job IDs, larges sorted by descending cost
		keepLarge      int   // retained (most costly) large job, or -1
		a, b           int64 // §3.2 minimum removal costs
		c              int64
		aKeep          []int // small jobs kept by the a_i knapsack
		bKeep          []int // jobs kept by the b_i knapsack (IDs)
		bKeepsLarge    bool  // whether bKeep retains the large job
	}
	states := make([]pstate, in.M)
	byProc := instance.JobsOn(in.M, in.Assign)
	totalLarge := 0
	for p := 0; p < in.M; p++ {
		st := &states[p]
		st.keepLarge = -1
		for _, j := range byProc[p] {
			if isLarge(j) {
				st.larges = append(st.larges, j)
			} else {
				st.smalls = append(st.smalls, j)
			}
		}
		totalLarge += len(st.larges)
		sort.Slice(st.larges, func(x, y int) bool {
			if jobs[st.larges[x]].Cost != jobs[st.larges[y]].Cost {
				return jobs[st.larges[x]].Cost > jobs[st.larges[y]].Cost
			}
			return st.larges[x] < st.larges[y]
		})
		if len(st.larges) > 0 {
			st.keepLarge = st.larges[0]
		}
	}
	if totalLarge > in.M {
		return res
	}

	// Keep-knapsack helper: choose the subset of ids to keep with total
	// size ≤ cap minimizing removed cost; returns kept ids and the
	// removed cost.
	solveKeep := func(ids []int, cap int64) (kept []int, removedCost int64) {
		if len(ids) == 0 {
			return nil, 0
		}
		items := make([]knapsack.Item, len(ids))
		var totalCost int64
		for i, j := range ids {
			items[i] = knapsack.Item{Size: jobs[j].Size, Value: jobs[j].Cost}
			totalCost += jobs[j].Cost
		}
		var keepIdx []int
		var keptVal int64
		if knapsack.ExactCost(len(ids), cap) <= opts.ExactWork {
			sink.Count("core.knapsack_exact", 1)
			keepIdx, keptVal = knapsack.MaxKeep(items, cap)
		} else {
			sink.Count("core.knapsack_approx", 1)
			keepIdx, keptVal = knapsack.MaxKeepApprox(items, cap, opts.Eps)
		}
		kept = make([]int, len(keepIdx))
		for i, idx := range keepIdx {
			kept[i] = ids[idx]
		}
		return kept, totalCost - keptVal
	}

	for p := range states {
		st := &states[p]
		// a_i: remove all larges but the most costly, plus smalls so the
		// kept small size fits target/2.
		var extraLargeCost int64
		for _, j := range st.larges {
			if j != st.keepLarge {
				extraLargeCost += jobs[j].Cost
			}
		}
		aKeep, aCost := solveKeep(st.smalls, target/2)
		st.a = extraLargeCost + aCost
		st.aKeep = aKeep

		// b_i: keep any subset (large included) with total size ≤ target,
		// after the Step-1 removal of the extra large jobs.
		ids := append([]int(nil), st.smalls...)
		if st.keepLarge >= 0 {
			ids = append(ids, st.keepLarge)
		}
		bKeep, bCost := solveKeep(ids, target)
		st.b = extraLargeCost + bCost
		st.bKeep = bKeep
		for _, j := range bKeep {
			if j == st.keepLarge && st.keepLarge >= 0 {
				st.bKeepsLarge = true
			}
		}
		st.c = st.a - st.b
	}

	// Select the L_T processors with the smallest c_i, preferring
	// large-holding ones on ties.
	order := make([]int, in.M)
	for p := range order {
		order[p] = p
	}
	sort.Slice(order, func(x, y int) bool {
		sx, sy := &states[order[x]], &states[order[y]]
		if sx.c != sy.c {
			return sx.c < sy.c
		}
		hx, hy := len(sx.larges) > 0, len(sy.larges) > 0
		if hx != hy {
			return hx
		}
		return order[x] < order[y]
	})
	selected := make([]bool, in.M)
	for i := 0; i < totalLarge; i++ {
		selected[order[i]] = true
	}

	assign := append([]int(nil), in.Assign...)
	var totalCost int64
	var displacedLarge, removedSmall []int
	var freeSlots []int
	for p := 0; p < in.M; p++ {
		st := &states[p]
		if selected[p] && st.keepLarge < 0 {
			freeSlots = append(freeSlots, p)
		}
		// Step-1 extra large jobs are displaced on every processor.
		for _, j := range st.larges {
			if j != st.keepLarge {
				displacedLarge = append(displacedLarge, j)
				totalCost += jobs[j].Cost
			}
		}
		if selected[p] {
			keptSet := make(map[int]bool, len(st.aKeep))
			for _, j := range st.aKeep {
				keptSet[j] = true
			}
			for _, j := range st.smalls {
				if !keptSet[j] {
					removedSmall = append(removedSmall, j)
					totalCost += jobs[j].Cost
				}
			}
		} else {
			keptSet := make(map[int]bool, len(st.bKeep))
			for _, j := range st.bKeep {
				keptSet[j] = true
			}
			if st.keepLarge >= 0 && !st.bKeepsLarge {
				displacedLarge = append(displacedLarge, st.keepLarge)
				totalCost += jobs[st.keepLarge].Cost
			}
			for _, j := range st.smalls {
				if !keptSet[j] {
					removedSmall = append(removedSmall, j)
					totalCost += jobs[j].Cost
				}
			}
		}
	}

	if len(displacedLarge) > len(freeSlots) {
		return res
	}
	for i, j := range displacedLarge {
		assign[j] = freeSlots[i]
	}

	// Greedy min-load placement of the removed small jobs, largest first.
	loads := make([]int64, in.M)
	removedSet := make(map[int]bool, len(removedSmall))
	for _, j := range removedSmall {
		removedSet[j] = true
	}
	for j, p := range assign {
		if !removedSet[j] {
			loads[p] += jobs[j].Size
		}
	}
	sort.Slice(removedSmall, func(x, y int) bool {
		if jobs[removedSmall[x]].Size != jobs[removedSmall[y]].Size {
			return jobs[removedSmall[x]].Size > jobs[removedSmall[y]].Size
		}
		return removedSmall[x] < removedSmall[y]
	})
	h := &minLoadHeap{loads: loads}
	for p := 0; p < in.M; p++ {
		h.items = append(h.items, p)
	}
	heap.Init(h)
	for _, j := range removedSmall {
		p := h.items[0]
		assign[j] = p
		loads[p] += jobs[j].Size
		heap.Fix(h, 0)
	}

	res.Feasible = true
	res.Cost = totalCost
	res.Solution = instance.NewSolution(in, assign)
	return res
}

// PartitionBudget finds, by integer binary search on the target
// makespan, a solution whose relocation cost is at most budget and whose
// makespan is at most 1.5·(1+Eps)·OPT(budget), where OPT(budget) is the
// best makespan achievable within the budget. The same boundary argument
// as MPartition applies: every target ≥ OPT(budget) is feasible by the
// paper's Lemma 7, so the search terminates at a target ≤ OPT(budget).
func PartitionBudget(in *instance.Instance, budget int64, opts BudgetOptions) instance.Solution {
	return PartitionBudgetObs(in, budget, opts, nil)
}

// PartitionBudgetObs is PartitionBudget with observability; a nil sink
// is equivalent to PartitionBudget.
func PartitionBudgetObs(in *instance.Instance, budget int64, opts BudgetOptions, sink *obs.Sink) instance.Solution {
	// The background context never fires, so the error is always nil.
	sol, _ := PartitionBudgetCtx(context.Background(), in, budget, opts, sink)
	return sol
}

// PartitionBudgetCtx is PartitionBudgetObs with a cancellable context:
// the bisection polls ctx before every budgeted PARTITION probe (each
// probe runs up to m knapsack solves) and returns ctx.Err() when the
// context fires mid-search.
func PartitionBudgetCtx(ctx context.Context, in *instance.Instance, budget int64, opts BudgetOptions, sink *obs.Sink) (instance.Solution, error) {
	if budget < 0 {
		budget = 0
	}
	finish := func(sol instance.Solution, target int64) (instance.Solution, error) {
		if sink.Tracing() {
			sink.Emit("search_result", obs.Fields{
				"budget": budget, "target": target,
				"makespan": sol.Makespan, "moves": sol.Moves, "cost": sol.MoveCost,
			})
		}
		return sol, nil
	}
	feasible := func(v int64) (BudgetResult, bool) {
		r := PartitionBudgetAtObs(in, v, opts, sink)
		return r, r.Feasible && r.Cost <= budget
	}
	lo, hi := in.LowerBound(), in.InitialMakespan()
	if lo >= hi {
		return finish(instance.NewSolution(in, in.Assign), hi)
	}
	best, ok := feasible(hi)
	if !ok {
		return finish(instance.NewSolution(in, in.Assign), 0)
	}
	for lo < hi {
		// Cancellation point: one knapsack-backed probe per step.
		if err := ctx.Err(); err != nil {
			return instance.Solution{}, err
		}
		mid := lo + (hi-lo)/2
		if r, good := feasible(mid); good {
			best, hi = r, mid
		} else {
			lo = mid + 1
		}
	}
	if best.Solution.Makespan >= in.InitialMakespan() {
		return finish(instance.NewSolution(in, in.Assign), 0)
	}
	return finish(best.Solution, best.Target)
}

// minLoadHeap orders processor indices by increasing load with index
// tie-break, for deterministic greedy placement in the §3.2 variant
// (the flat kernels use instance.HeapInit/HeapFixRoot instead).
type minLoadHeap struct {
	items []int
	loads []int64
}

func (h *minLoadHeap) Len() int { return len(h.items) }

func (h *minLoadHeap) Less(a, b int) bool {
	la, lb := h.loads[h.items[a]], h.loads[h.items[b]]
	if la != lb {
		return la < lb
	}
	return h.items[a] < h.items[b]
}

func (h *minLoadHeap) Swap(a, b int) { h.items[a], h.items[b] = h.items[b], h.items[a] }

func (h *minLoadHeap) Push(x any) { h.items = append(h.items, x.(int)) }

func (h *minLoadHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
