package core_test

// The reference implementation below is the pre-flat slice-of-structs
// PARTITION, kept verbatim (minus observability) as the oracle the
// rewritten probe kernel is checked against at every target on the
// threshold ladder: same removals, same selection, same tie-breaks,
// identical Result field by field.

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/edgecases"
	"repro/internal/instance"
)

type refResult struct {
	Feasible               bool
	Target                 int64
	Removals               int
	LargeTotal, LargeExtra int
	Selected               []int
	Solution               instance.Solution
}

type refSolver struct {
	in     *instance.Instance
	byProc [][]int

	states       []refProcState
	assign       []int
	order        []int
	selected     []bool
	freeSlots    []int
	removedLarge []int
	removedSmall []int
	loads        []int64
	removed      []bool
	heapItems    []int
}

func newRefSolver(in *instance.Instance) *refSolver {
	s := &refSolver{in: in, byProc: instance.JobsOn(in.M, in.Assign)}
	for p := range s.byProc {
		list := s.byProc[p]
		sort.Slice(list, func(x, y int) bool {
			if in.Jobs[list[x]].Size != in.Jobs[list[y]].Size {
				return in.Jobs[list[x]].Size > in.Jobs[list[y]].Size
			}
			return list[x] < list[y]
		})
	}
	s.states = make([]refProcState, in.M)
	s.assign = make([]int, in.N())
	s.order = make([]int, in.M)
	s.selected = make([]bool, in.M)
	s.loads = make([]int64, in.M)
	s.removed = make([]bool, in.N())
	s.heapItems = make([]int, 0, in.M)
	return s
}

type refProcState struct {
	jobs     []int
	largeCnt int
	a        int
	b        int
	c        int
}

func refPartition(in *instance.Instance, target int64) refResult {
	return newRefSolver(in).runProbe(target)
}

func (s *refSolver) runProbe(target int64) refResult {
	in := s.in
	res := refResult{Target: target}
	if target < in.MaxSize() || target*int64(in.M) < in.TotalSize() {
		return res
	}

	jobs := in.Jobs
	states := s.states
	totalLarge := 0
	for p := 0; p < in.M; p++ {
		st := &states[p]
		st.jobs = s.byProc[p]
		st.largeCnt, st.a, st.b, st.c = 0, 0, 0, 0
		for _, j := range st.jobs {
			if 2*jobs[j].Size > target {
				st.largeCnt++
			} else {
				break
			}
		}
		totalLarge += st.largeCnt
	}
	if totalLarge > in.M {
		return res
	}

	assign := s.assign
	copy(assign, in.Assign)
	removals := 0
	removedLarge, removedSmall := s.removedLarge[:0], s.removedSmall[:0]

	for p := range states {
		st := &states[p]
		for i := 0; i < st.largeCnt-1; i++ {
			removedLarge = append(removedLarge, st.jobs[i])
			removals++
		}
	}
	res.LargeExtra = removals
	res.LargeTotal = totalLarge

	for p := range states {
		st := &states[p]
		smalls := st.jobs[st.largeCnt:]
		var smallTotal int64
		for _, j := range smalls {
			smallTotal += jobs[j].Size
		}
		rem := smallTotal
		for st.a = 0; 2*rem > target; st.a++ {
			rem -= jobs[smalls[st.a]].Size
		}
		total := smallTotal
		var keep int64
		if st.largeCnt > 0 {
			keep = jobs[st.jobs[st.largeCnt-1]].Size
			total += keep
		}
		rem = total
		cnt := 0
		if keep > 0 && rem > target {
			rem -= keep
			cnt++
		}
		for i := 0; rem > target; i++ {
			rem -= jobs[smalls[i]].Size
			cnt++
		}
		st.b = cnt
		st.c = st.a - st.b
	}

	order := s.order
	for p := range order {
		order[p] = p
	}
	sort.Slice(order, func(x, y int) bool {
		sx, sy := &states[order[x]], &states[order[y]]
		if sx.c != sy.c {
			return sx.c < sy.c
		}
		hx, hy := sx.largeCnt > 0, sy.largeCnt > 0
		if hx != hy {
			return hx
		}
		return order[x] < order[y]
	})
	selected := s.selected
	for p := range selected {
		selected[p] = false
	}
	for i := 0; i < totalLarge; i++ {
		selected[order[i]] = true
	}
	freeSlots := s.freeSlots[:0]
	for p := 0; p < in.M; p++ {
		if selected[p] {
			res.Selected = append(res.Selected, p)
			if states[p].largeCnt == 0 {
				freeSlots = append(freeSlots, p)
			}
		}
	}
	for p := range states {
		st := &states[p]
		if !selected[p] {
			continue
		}
		smalls := st.jobs[st.largeCnt:]
		for i := 0; i < st.a; i++ {
			removedSmall = append(removedSmall, smalls[i])
			removals++
		}
	}

	for p := range states {
		st := &states[p]
		if selected[p] {
			continue
		}
		smalls := st.jobs[st.largeCnt:]
		cnt := st.b
		if st.largeCnt > 0 && cnt > 0 {
			removedLarge = append(removedLarge, st.jobs[st.largeCnt-1])
			removals++
			cnt--
		}
		for i := 0; i < cnt; i++ {
			removedSmall = append(removedSmall, smalls[i])
			removals++
		}
	}

	s.removedLarge, s.removedSmall, s.freeSlots = removedLarge, removedSmall, freeSlots

	if len(removedLarge) > len(freeSlots) {
		return refResult{Target: target}
	}
	for i, j := range removedLarge {
		assign[j] = freeSlots[i]
	}

	loads := s.loads
	for p := range loads {
		loads[p] = 0
	}
	removedSet := s.removed
	for _, j := range removedSmall {
		removedSet[j] = true
	}
	for j, p := range assign {
		if !removedSet[j] {
			loads[p] += jobs[j].Size
		}
	}
	for _, j := range removedSmall {
		removedSet[j] = false
	}
	sort.Slice(removedSmall, func(x, y int) bool {
		if jobs[removedSmall[x]].Size != jobs[removedSmall[y]].Size {
			return jobs[removedSmall[x]].Size > jobs[removedSmall[y]].Size
		}
		return removedSmall[x] < removedSmall[y]
	})
	h := &refMinLoadHeap{items: s.heapItems[:0], loads: loads}
	for p := 0; p < in.M; p++ {
		h.items = append(h.items, p)
	}
	heap.Init(h)
	for _, j := range removedSmall {
		p := h.items[0]
		assign[j] = p
		loads[p] += jobs[j].Size
		heap.Fix(h, 0)
	}
	s.heapItems = h.items

	res.Feasible = true
	res.Removals = removals
	res.Solution = instance.NewSolution(in, assign)
	return res
}

type refMinLoadHeap struct {
	items []int
	loads []int64
}

func (h *refMinLoadHeap) Len() int { return len(h.items) }

func (h *refMinLoadHeap) Less(a, b int) bool {
	la, lb := h.loads[h.items[a]], h.loads[h.items[b]]
	if la != lb {
		return la < lb
	}
	return h.items[a] < h.items[b]
}

func (h *refMinLoadHeap) Swap(a, b int) { h.items[a], h.items[b] = h.items[b], h.items[a] }

func (h *refMinLoadHeap) Push(x any) { h.items = append(h.items, x.(int)) }

func (h *refMinLoadHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// refTargets is the set of target values equivalence is checked at:
// around both unconditional lower bounds, the initial makespan, and
// every distinct per-processor prefix threshold in between.
func refTargets(in *instance.Instance) []int64 {
	var targets []int64
	add := func(v int64) {
		if v > 0 {
			targets = append(targets, v-1, v, v+1)
		}
	}
	add(in.MaxSize())
	total := in.TotalSize()
	if in.M > 0 {
		add((total + int64(in.M) - 1) / int64(in.M))
	}
	loads := in.Loads(in.Assign)
	var initial int64
	for _, l := range loads {
		if l > initial {
			initial = l
		}
	}
	add(initial)
	add(initial + initial/2)
	return targets
}

func comparePartition(t *testing.T, in *instance.Instance, target int64) {
	t.Helper()
	want := refPartition(in, target)
	got := core.Partition(in, target)
	if got.Feasible != want.Feasible || got.Target != want.Target ||
		got.Removals != want.Removals || got.LargeTotal != want.LargeTotal ||
		got.LargeExtra != want.LargeExtra {
		t.Fatalf("target %d: got %+v, want %+v", target, got, want)
	}
	if len(got.Selected) != len(want.Selected) {
		t.Fatalf("target %d: selected %v, want %v", target, got.Selected, want.Selected)
	}
	for i := range want.Selected {
		if got.Selected[i] != want.Selected[i] {
			t.Fatalf("target %d: selected %v, want %v", target, got.Selected, want.Selected)
		}
	}
	if got.Solution.Makespan != want.Solution.Makespan ||
		got.Solution.Moves != want.Solution.Moves ||
		got.Solution.MoveCost != want.Solution.MoveCost {
		t.Fatalf("target %d: solution metrics got %+v, want %+v", target, got.Solution, want.Solution)
	}
	for j := range want.Solution.Assign {
		if got.Solution.Assign[j] != want.Solution.Assign[j] {
			t.Fatalf("target %d: assign[%d] = %d, want %d", target, j, got.Solution.Assign[j], want.Solution.Assign[j])
		}
	}
}

// TestPartitionMatchesReference pins the flat probe kernel to the
// slice-of-structs original on the shared edge-case table.
func TestPartitionMatchesReference(t *testing.T) {
	for _, tc := range edgecases.Table() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			for _, target := range refTargets(tc.In) {
				comparePartition(t, tc.In, target)
			}
		})
	}
}

func TestPartitionMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rng.Intn(8)
		n := 1 + rng.Intn(40)
		in := edgecases.Random(rng, m, n, 60)
		for _, target := range refTargets(in) {
			comparePartition(t, in, target)
		}
		// A handful of arbitrary targets, including infeasible ones.
		for i := 0; i < 6; i++ {
			comparePartition(t, in, rng.Int63n(2*in.TotalSize()+2))
		}
	}
}
