// Package core implements the paper's primary contribution: the §3
// PARTITION algorithm (a 1.5-approximation for load rebalancing given
// the optimal value), the §3.1 M-PARTITION algorithm that removes the
// known-OPT assumption, and the §3.2 extension to arbitrary relocation
// costs with a budget.
//
// All size arithmetic is integral. A job is "large" with respect to a
// target value V when 2·size > V (i.e. size > V/2), exactly the paper's
// Definition 1 with OPT replaced by the current guess.
package core

import (
	"container/heap"
	"sort"

	"repro/internal/instance"
	"repro/internal/obs"
)

// Result is the outcome of one PARTITION run at a fixed target value.
type Result struct {
	// Feasible reports whether the target admits a PARTITION solution at
	// all (target at least every unconditional lower bound and at most m
	// large jobs). When false the other fields are zero.
	Feasible bool
	// Target is the value V the run was performed against.
	Target int64
	// Removals is the number of job removals PARTITION performed; by the
	// paper's Lemma 4 this never exceeds the number of moves an optimal
	// solution with makespan ≤ Target needs.
	Removals int
	// LargeTotal is L_T, the number of jobs larger than Target/2, and
	// LargeExtra is L_E, how many of them shared a processor with
	// another large job (the Step 1 removals).
	LargeTotal, LargeExtra int
	// Selected lists the Step 3 processors (the L_T smallest c_i values,
	// ties preferring large-holders), in increasing index order.
	Selected []int
	// Solution is the produced assignment with recomputed metrics. Its
	// Moves never exceeds Removals (a removed job may return home).
	Solution instance.Solution
}

// solver holds the target-independent preprocessing shared by every
// probe of the same instance: per-processor job lists sorted by
// decreasing size. M-PARTITION probes O(log C) targets, so hoisting the
// O(n log n) sort out of the probe is the difference between
// O(n log n + n log C) and O(n log n · log C).
//
// A solver also owns the per-probe scratch buffers, so repeated probes
// (the bisection and incremental-scan loops) reuse the same backing
// arrays instead of reallocating them: after the first probe the only
// allocations left are the parts of Result that escape to the caller
// (Selected and the Solution's copied assignment). A solver is confined
// to a single goroutine; the parallel surfaces build one solver per
// M-PARTITION call, so the scratch is never shared.
type solver struct {
	in     *instance.Instance
	byProc [][]int // per processor, job IDs sorted by decreasing size

	// sink is the observability handle; nil disables instrumentation
	// (the only cost left on the probe path is nil checks). The counters
	// and histograms are resolved once here, not per probe.
	sink          *obs.Sink
	probes        *obs.Counter
	probesOK      *obs.Counter
	removalsTotal *obs.Counter
	probeRemovals *obs.Histogram

	// Per-probe scratch, reused across probes of the same solver.
	states       []procState
	assign       []int  // working assignment, reset from in.Assign each probe
	order        []int  // Step 3 processor ordering
	selected     []bool // Step 3 selection flags
	freeSlots    []int  // selected large-free processors
	removedLarge []int  // removal lists (Step 1/3/4)
	removedSmall []int
	loads        []int64 // Step 6 running loads
	removed      []bool  // job-indexed removed-small membership (Step 6)
	heapItems    []int   // Step 6 min-load heap backing array
}

func newSolver(in *instance.Instance, sink *obs.Sink) *solver {
	s := &solver{in: in, byProc: instance.JobsOn(in.M, in.Assign), sink: sink}
	if sink != nil {
		s.probes = sink.Reg.Counter("core.probes")
		s.probesOK = sink.Reg.Counter("core.probes_feasible")
		s.removalsTotal = sink.Reg.Counter("core.removals")
		s.probeRemovals = sink.Reg.Histogram("core.probe_removals")
	}
	for p := range s.byProc {
		list := s.byProc[p]
		sort.Slice(list, func(x, y int) bool {
			if in.Jobs[list[x]].Size != in.Jobs[list[y]].Size {
				return in.Jobs[list[x]].Size > in.Jobs[list[y]].Size
			}
			return list[x] < list[y]
		})
	}
	s.states = make([]procState, in.M)
	s.assign = make([]int, in.N())
	s.order = make([]int, in.M)
	s.selected = make([]bool, in.M)
	s.loads = make([]int64, in.M)
	s.removed = make([]bool, in.N())
	s.heapItems = make([]int, 0, in.M)
	return s
}

// procState holds the per-processor quantities of §3 Step 2.
type procState struct {
	jobs     []int // job IDs on the processor, decreasing size (shared, read-only)
	largeCnt int   // number of large jobs (a prefix of jobs)
	a        int   // Step 2 a_i: small removals to reach small-load ≤ V/2
	b        int   // Step 2 b_i: removals to reach total load ≤ V
	c        int   // c_i = a_i − b_i
}

// Partition runs the §3 PARTITION algorithm against target value target
// (the guessed optimal makespan). The produced solution has makespan at
// most 1.5·target whenever target is at least the true optimum, and its
// removal count is minimal in the sense of the paper's Lemma 3/4.
func Partition(in *instance.Instance, target int64) Result {
	return newSolver(in, nil).run(target)
}

// PartitionObs is Partition with observability: per-probe counters and
// probe_start / removal / probe_result trace events flow into sink. A
// nil sink is equivalent to Partition.
func PartitionObs(in *instance.Instance, target int64, sink *obs.Sink) Result {
	return newSolver(in, sink).run(target)
}

// run executes one PARTITION probe, wrapping runProbe with the
// per-probe instrumentation so every return path emits exactly one
// probe_result event.
func (s *solver) run(target int64) Result {
	if s.sink == nil {
		return s.runProbe(target)
	}
	s.probes.Inc()
	if s.sink.Tracing() {
		s.sink.Emit("probe_start", obs.Fields{"target": target})
	}
	res := s.runProbe(target)
	if res.Feasible {
		s.probesOK.Inc()
		s.removalsTotal.Add(int64(res.Removals))
		s.probeRemovals.Observe(int64(res.Removals))
	}
	if s.sink.Tracing() {
		f := obs.Fields{"target": target, "feasible": res.Feasible}
		if res.Feasible {
			f["removals"] = res.Removals
			f["large_total"] = res.LargeTotal
			f["large_extra"] = res.LargeExtra
			f["makespan"] = res.Solution.Makespan
		}
		s.sink.Emit("probe_result", f)
	}
	return res
}

func (s *solver) runProbe(target int64) Result {
	in := s.in
	res := Result{Target: target}
	// Unconditional lower bounds: any makespan is at least the largest
	// job and the ceiling average. Below either, no solution of value
	// ≤ target exists.
	if target < in.MaxSize() || target*int64(in.M) < in.TotalSize() {
		return res
	}

	jobs := in.Jobs
	states := s.states
	totalLarge := 0
	for p := 0; p < in.M; p++ {
		st := &states[p]
		st.jobs = s.byProc[p]
		st.largeCnt, st.a, st.b, st.c = 0, 0, 0, 0
		// Large jobs are a prefix of the size-sorted list.
		for _, j := range st.jobs {
			if 2*jobs[j].Size > target {
				st.largeCnt++
			} else {
				break
			}
		}
		totalLarge += st.largeCnt
	}
	// More large jobs than processors means two of them must share a
	// processor in every assignment, forcing makespan > target.
	if totalLarge > in.M {
		return res
	}

	assign := s.assign
	copy(assign, in.Assign)
	removals := 0
	removedLarge, removedSmall := s.removedLarge[:0], s.removedSmall[:0]

	// Step 1: from each processor keep only its smallest large job (the
	// last of the large prefix).
	for p := range states {
		st := &states[p]
		for i := 0; i < st.largeCnt-1; i++ {
			removedLarge = append(removedLarge, st.jobs[i])
			removals++
			if s.sink.Tracing() {
				s.sink.Emit("removal", obs.Fields{"target": target, "job": st.jobs[i], "proc": p, "kind": "large", "step": 1})
			}
		}
	}
	res.LargeExtra = removals
	res.LargeTotal = totalLarge

	// Step 2: per-processor removal counts over the post-Step-1 config.
	for p := range states {
		st := &states[p]
		smalls := st.jobs[st.largeCnt:] // sorted desc
		var smallTotal int64
		for _, j := range smalls {
			smallTotal += jobs[j].Size
		}
		// a_i: strip largest smalls until 2·remaining ≤ target.
		rem := smallTotal
		for st.a = 0; 2*rem > target; st.a++ {
			rem -= jobs[smalls[st.a]].Size
		}
		// b_i: strip largest jobs (retained large first — it strictly
		// exceeds every small) until remaining ≤ target.
		total := smallTotal
		var keep int64 // size of the retained large job, 0 if none
		if st.largeCnt > 0 {
			keep = jobs[st.jobs[st.largeCnt-1]].Size
			total += keep
		}
		rem = total
		cnt := 0
		if keep > 0 && rem > target {
			rem -= keep
			cnt++
		}
		for i := 0; rem > target; i++ {
			rem -= jobs[smalls[i]].Size
			cnt++
		}
		st.b = cnt
		st.c = st.a - st.b
	}

	// Step 3: pick the L_T processors with the smallest c_i, preferring
	// large-holding processors on ties, and strip their a_i largest
	// small jobs.
	order := s.order
	for p := range order {
		order[p] = p
	}
	sort.Slice(order, func(x, y int) bool {
		sx, sy := &states[order[x]], &states[order[y]]
		if sx.c != sy.c {
			return sx.c < sy.c
		}
		hx, hy := sx.largeCnt > 0, sy.largeCnt > 0
		if hx != hy {
			return hx
		}
		return order[x] < order[y]
	})
	selected := s.selected
	for p := range selected {
		selected[p] = false
	}
	for i := 0; i < totalLarge; i++ {
		selected[order[i]] = true
	}
	// Selected large-free processors, in index order, will receive the
	// relocated large jobs.
	freeSlots := s.freeSlots[:0]
	for p := 0; p < in.M; p++ {
		if selected[p] {
			res.Selected = append(res.Selected, p)
			if states[p].largeCnt == 0 {
				freeSlots = append(freeSlots, p)
			}
		}
	}
	for p := range states {
		st := &states[p]
		if !selected[p] {
			continue
		}
		smalls := st.jobs[st.largeCnt:]
		for i := 0; i < st.a; i++ {
			removedSmall = append(removedSmall, smalls[i])
			removals++
			if s.sink.Tracing() {
				s.sink.Emit("removal", obs.Fields{"target": target, "job": smalls[i], "proc": p, "kind": "small", "step": 3})
			}
		}
	}

	// Step 4: strip b_i jobs from each non-selected processor; displaced
	// large jobs go to distinct large-free processors from Step 3.
	for p := range states {
		st := &states[p]
		if selected[p] {
			continue
		}
		smalls := st.jobs[st.largeCnt:]
		cnt := st.b
		if st.largeCnt > 0 && cnt > 0 {
			removedLarge = append(removedLarge, st.jobs[st.largeCnt-1])
			removals++
			cnt--
			if s.sink.Tracing() {
				s.sink.Emit("removal", obs.Fields{"target": target, "job": st.jobs[st.largeCnt-1], "proc": p, "kind": "large", "step": 4})
			}
		}
		for i := 0; i < cnt; i++ {
			removedSmall = append(removedSmall, smalls[i])
			removals++
			if s.sink.Tracing() {
				s.sink.Emit("removal", obs.Fields{"target": target, "job": smalls[i], "proc": p, "kind": "small", "step": 4})
			}
		}
	}

	// The appended scratch slices may have grown; retain the capacity
	// for the next probe before any return path.
	s.removedLarge, s.removedSmall, s.freeSlots = removedLarge, removedSmall, freeSlots

	// Steps 4–5: place every displaced large job (from Steps 1 and 4) on
	// its own large-free selected processor. The counting argument in
	// DESIGN.md guarantees capacity; if violated the target is rejected.
	if len(removedLarge) > len(freeSlots) {
		return Result{Target: target}
	}
	for i, j := range removedLarge {
		assign[j] = freeSlots[i]
	}

	// Step 6: greedy placement of the removed small jobs, largest first,
	// each onto the current minimum-load processor.
	loads := s.loads
	for p := range loads {
		loads[p] = 0
	}
	removedSet := s.removed // all-false between probes
	for _, j := range removedSmall {
		removedSet[j] = true
	}
	for j, p := range assign {
		if !removedSet[j] {
			loads[p] += jobs[j].Size
		}
	}
	for _, j := range removedSmall {
		removedSet[j] = false
	}
	sort.Slice(removedSmall, func(x, y int) bool {
		if jobs[removedSmall[x]].Size != jobs[removedSmall[y]].Size {
			return jobs[removedSmall[x]].Size > jobs[removedSmall[y]].Size
		}
		return removedSmall[x] < removedSmall[y]
	})
	h := &minLoadHeap{items: s.heapItems[:0], loads: loads}
	for p := 0; p < in.M; p++ {
		h.items = append(h.items, p)
	}
	heap.Init(h)
	for _, j := range removedSmall {
		p := h.items[0]
		assign[j] = p
		loads[p] += jobs[j].Size
		heap.Fix(h, 0)
	}
	s.heapItems = h.items

	res.Feasible = true
	res.Removals = removals
	res.Solution = instance.NewSolution(in, assign)
	return res
}

// minLoadHeap orders processor indices by increasing load with index
// tie-break, for deterministic greedy placement.
type minLoadHeap struct {
	items []int
	loads []int64
}

func (h *minLoadHeap) Len() int { return len(h.items) }

func (h *minLoadHeap) Less(a, b int) bool {
	la, lb := h.loads[h.items[a]], h.loads[h.items[b]]
	if la != lb {
		return la < lb
	}
	return h.items[a] < h.items[b]
}

func (h *minLoadHeap) Swap(a, b int) { h.items[a], h.items[b] = h.items[b], h.items[a] }

func (h *minLoadHeap) Push(x any) { h.items = append(h.items, x.(int)) }

func (h *minLoadHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
