// Package core implements the paper's primary contribution: the §3
// PARTITION algorithm (a 1.5-approximation for load rebalancing given
// the optimal value), the §3.1 M-PARTITION algorithm that removes the
// known-OPT assumption, and the §3.2 extension to arbitrary relocation
// costs with a budget.
//
// All size arithmetic is integral. A job is "large" with respect to a
// target value V when 2·size > V (i.e. size > V/2), exactly the paper's
// Definition 1 with OPT replaced by the current guess.
package core

import (
	"sort"

	"repro/internal/instance"
	"repro/internal/obs"
)

// Result is the outcome of one PARTITION run at a fixed target value.
type Result struct {
	// Feasible reports whether the target admits a PARTITION solution at
	// all (target at least every unconditional lower bound and at most m
	// large jobs). When false the other fields are zero.
	Feasible bool
	// Target is the value V the run was performed against.
	Target int64
	// Removals is the number of job removals PARTITION performed; by the
	// paper's Lemma 4 this never exceeds the number of moves an optimal
	// solution with makespan ≤ Target needs.
	Removals int
	// LargeTotal is L_T, the number of jobs larger than Target/2, and
	// LargeExtra is L_E, how many of them shared a processor with
	// another large job (the Step 1 removals).
	LargeTotal, LargeExtra int
	// Selected lists the Step 3 processors (the L_T smallest c_i values,
	// ties preferring large-holders), in increasing index order.
	Selected []int
	// Solution is the produced assignment with recomputed metrics. Its
	// Moves never exceeds Removals (a removed job may return home).
	Solution instance.Solution
}

// solver holds the target-independent preprocessing shared by every
// probe of the same instance: a flat struct-of-arrays view of the
// instance (instance.Flat) and a CSR per-processor job index whose rows
// are sorted by decreasing size. M-PARTITION probes O(log C) targets,
// so hoisting the O(n log n) sort out of the probe is the difference
// between O(n log n + n log C) and O(n log n · log C).
//
// A solver also owns all per-probe scratch, so repeated probes (the
// bisection and incremental-scan loops) run with zero steady-state heap
// allocations: probeFlat touches only the flat arrays below, and the
// parts of Result that escape to the caller (Selected, the Solution's
// copied assignment) are materialized only by run(), once per accepted
// target on the search paths. A solver is confined to a single
// goroutine; the parallel surfaces build one solver per M-PARTITION
// call, so the scratch is never shared.
type solver struct {
	in   *instance.Instance
	flat instance.Flat
	csr  instance.CSR // rows sorted by (size desc, id asc)
	// rowPrefix[csr.Start[p]+i] is the summed size of the first i+1 jobs
	// of row p — the prefix sums the ladder and incremental scan need.
	rowPrefix []int64

	// sink is the observability handle; nil disables instrumentation
	// (the only cost left on the probe path is nil checks). The counters
	// and histograms are resolved once here, not per probe.
	sink          *obs.Sink
	probes        *obs.Counter
	probesOK      *obs.Counter
	removalsTotal *obs.Counter
	probeRemovals *obs.Histogram

	// Per-probe scratch, reused across probes of the same solver.
	largeCnt     []int32 // per-processor large-job count (Step 1)
	aArr         []int32 // Step 2 a_i
	bArr         []int32 // Step 2 b_i
	cArr         []int32 // c_i = a_i − b_i
	assign       []int32 // working assignment, reset from the flat view each probe
	order        []int32 // Step 3 processor ordering
	selected     []bool  // Step 3 selection flags
	selectedList []int32 // selected processors in increasing index order
	freeSlots    []int32 // selected large-free processors
	removedLarge []int32 // removal lists (Step 1/3/4)
	removedSmall []int32
	loads        []int64 // Step 6 running loads
	removed      []bool  // job-indexed removed-small membership (Step 6)
	heapItems    []int32 // Step 6 min-load heap backing array
	orderSorter  procCSorter
	smallSorter  instance.SizeDescSorter

	// Light-probe outputs (valid after probeFlat returns true).
	lastRemovals   int
	lastLargeTotal int
	lastLargeExtra int
	probeMakespan  int64

	// Search scratch (MPartitionCtx).
	bestAssign []int32
	assignInt  []int
	ladderBuf  []int64
}

func newSolver(in *instance.Instance, sink *obs.Sink) *solver {
	s := &solver{in: in, sink: sink}
	if sink != nil {
		s.probes = sink.Reg.Counter("core.probes")
		s.probesOK = sink.Reg.Counter("core.probes_feasible")
		s.removalsTotal = sink.Reg.Counter("core.removals")
		s.probeRemovals = sink.Reg.Histogram("core.probe_removals")
	}
	s.flat.Reset(in)
	s.csr.Reset(in.M, s.flat.Assign)
	s.smallSorter.Sizes = s.flat.Sizes
	for p := 0; p < in.M; p++ {
		s.smallSorter.IDs = s.csr.Row(p)
		sort.Sort(&s.smallSorter)
	}
	n, m := in.N(), in.M
	s.rowPrefix = make([]int64, n)
	for p := 0; p < m; p++ {
		var sum int64
		for i, j := range s.csr.Row(p) {
			sum += s.flat.Sizes[j]
			s.rowPrefix[int(s.csr.Start[p])+i] = sum
		}
	}
	s.largeCnt = make([]int32, m)
	s.aArr = make([]int32, m)
	s.bArr = make([]int32, m)
	s.cArr = make([]int32, m)
	s.assign = make([]int32, n)
	s.order = make([]int32, m)
	s.selected = make([]bool, m)
	s.loads = make([]int64, m)
	s.removed = make([]bool, n)
	s.heapItems = make([]int32, m)
	return s
}

// rowPrefixSum returns the summed size of the q largest jobs on
// processor p.
func (s *solver) rowPrefixSum(p, q int) int64 {
	if q == 0 {
		return 0
	}
	return s.rowPrefix[int(s.csr.Start[p])+q-1]
}

// rowTotal returns the total load of processor p's initial row.
func (s *solver) rowTotal(p int) int64 {
	return s.rowPrefixSum(p, int(s.csr.Start[p+1]-s.csr.Start[p]))
}

// Partition runs the §3 PARTITION algorithm against target value target
// (the guessed optimal makespan). The produced solution has makespan at
// most 1.5·target whenever target is at least the true optimum, and its
// removal count is minimal in the sense of the paper's Lemma 3/4.
func Partition(in *instance.Instance, target int64) Result {
	return newSolver(in, nil).run(target)
}

// PartitionObs is Partition with observability: per-probe counters and
// probe_start / removal / probe_result trace events flow into sink. A
// nil sink is equivalent to Partition.
func PartitionObs(in *instance.Instance, target int64, sink *obs.Sink) Result {
	return newSolver(in, sink).run(target)
}

// run executes one instrumented PARTITION probe and materializes the
// full Result (Selected and the Solution escape to the caller). The
// search loops use runLight instead and materialize only the accepted
// target.
func (s *solver) run(target int64) Result {
	res := Result{Target: target}
	if !s.runLight(target) {
		return res
	}
	res.Feasible = true
	res.Removals = s.lastRemovals
	res.LargeTotal = s.lastLargeTotal
	res.LargeExtra = s.lastLargeExtra
	if len(s.selectedList) > 0 {
		res.Selected = make([]int, len(s.selectedList))
		for i, p := range s.selectedList {
			res.Selected[i] = int(p)
		}
	}
	res.Solution = s.materialize(s.assign)
	return res
}

// runLight executes one PARTITION probe, wrapping probeFlat with the
// per-probe instrumentation so every return path emits exactly one
// probe_result event. It allocates nothing (tracing disabled); the
// probe outcome is left in the solver's last* fields and s.assign.
func (s *solver) runLight(target int64) bool {
	if s.sink == nil {
		return s.probeFlat(target)
	}
	s.probes.Inc()
	if s.sink.Tracing() {
		s.sink.Emit("probe_start", obs.Fields{"target": target})
	}
	ok := s.probeFlat(target)
	if ok {
		s.probesOK.Inc()
		s.removalsTotal.Add(int64(s.lastRemovals))
		s.probeRemovals.Observe(int64(s.lastRemovals))
	}
	if s.sink.Tracing() {
		f := obs.Fields{"target": target, "feasible": ok}
		if ok {
			f["removals"] = s.lastRemovals
			f["large_total"] = s.lastLargeTotal
			f["large_extra"] = s.lastLargeExtra
			f["makespan"] = s.probeMakespan
		}
		s.sink.Emit("probe_result", f)
	}
	return ok
}

// materialize converts a kernel assignment into an escaping Solution
// with recomputed metrics.
func (s *solver) materialize(assign []int32) instance.Solution {
	s.assignInt = instance.GrowSlice(s.assignInt, len(assign))
	for j, p := range assign {
		s.assignInt[j] = int(p)
	}
	return instance.NewSolution(s.in, s.assignInt)
}

// probeFlat is the PARTITION kernel: Steps 1–6 of §3 over the flat
// arrays, zero heap allocations at steady state. On success the
// resulting assignment is in s.assign, its makespan in s.probeMakespan,
// and the removal counts in the last* fields.
func (s *solver) probeFlat(target int64) bool {
	f := &s.flat
	m := f.M
	sizes := f.Sizes
	// Unconditional lower bounds: any makespan is at least the largest
	// job and the ceiling average. Below either, no solution of value
	// ≤ target exists.
	if target < f.Max || target*int64(m) < f.Total {
		return false
	}

	totalLarge := 0
	for p := 0; p < m; p++ {
		// Large jobs are a prefix of the size-sorted row.
		lc := int32(0)
		for _, j := range s.csr.Row(p) {
			if 2*sizes[j] > target {
				lc++
			} else {
				break
			}
		}
		s.largeCnt[p] = lc
		totalLarge += int(lc)
	}
	// More large jobs than processors means two of them must share a
	// processor in every assignment, forcing makespan > target.
	if totalLarge > m {
		return false
	}

	assign := s.assign
	copy(assign, f.Assign)
	removals := 0
	removedLarge, removedSmall := s.removedLarge[:0], s.removedSmall[:0]

	// Step 1: from each processor keep only its smallest large job (the
	// last of the large prefix).
	for p := 0; p < m; p++ {
		row := s.csr.Row(p)
		for i := int32(0); i < s.largeCnt[p]-1; i++ {
			removedLarge = append(removedLarge, row[i])
			removals++
			if s.sink.Tracing() {
				s.sink.Emit("removal", obs.Fields{"target": target, "job": int(row[i]), "proc": p, "kind": "large", "step": 1})
			}
		}
	}
	s.lastLargeExtra = removals
	s.lastLargeTotal = totalLarge

	// Step 2: per-processor removal counts over the post-Step-1 config.
	for p := 0; p < m; p++ {
		row := s.csr.Row(p)
		lc := int(s.largeCnt[p])
		smalls := row[lc:] // sorted desc
		var smallTotal int64
		for _, j := range smalls {
			smallTotal += sizes[j]
		}
		// a_i: strip largest smalls until 2·remaining ≤ target.
		rem := smallTotal
		a := 0
		for ; 2*rem > target; a++ {
			rem -= sizes[smalls[a]]
		}
		// b_i: strip largest jobs (retained large first — it strictly
		// exceeds every small) until remaining ≤ target.
		total := smallTotal
		var keep int64 // size of the retained large job, 0 if none
		if lc > 0 {
			keep = sizes[row[lc-1]]
			total += keep
		}
		rem = total
		cnt := 0
		if keep > 0 && rem > target {
			rem -= keep
			cnt++
		}
		for i := 0; rem > target; i++ {
			rem -= sizes[smalls[i]]
			cnt++
		}
		s.aArr[p] = int32(a)
		s.bArr[p] = int32(cnt)
		s.cArr[p] = int32(a - cnt)
	}

	// Step 3: pick the L_T processors with the smallest c_i, preferring
	// large-holding processors on ties, and strip their a_i largest
	// small jobs.
	order := s.order
	for p := range order {
		order[p] = int32(p)
	}
	s.orderSorter = procCSorter{order: order, c: s.cArr, largeCnt: s.largeCnt}
	sort.Sort(&s.orderSorter)
	selected := s.selected
	for p := range selected {
		selected[p] = false
	}
	for i := 0; i < totalLarge; i++ {
		selected[order[i]] = true
	}
	// Selected large-free processors, in index order, will receive the
	// relocated large jobs.
	selectedList := s.selectedList[:0]
	freeSlots := s.freeSlots[:0]
	for p := 0; p < m; p++ {
		if selected[p] {
			selectedList = append(selectedList, int32(p))
			if s.largeCnt[p] == 0 {
				freeSlots = append(freeSlots, int32(p))
			}
		}
	}
	s.selectedList = selectedList
	for p := 0; p < m; p++ {
		if !selected[p] {
			continue
		}
		smalls := s.csr.Row(p)[s.largeCnt[p]:]
		for i := int32(0); i < s.aArr[p]; i++ {
			removedSmall = append(removedSmall, smalls[i])
			removals++
			if s.sink.Tracing() {
				s.sink.Emit("removal", obs.Fields{"target": target, "job": int(smalls[i]), "proc": p, "kind": "small", "step": 3})
			}
		}
	}

	// Step 4: strip b_i jobs from each non-selected processor; displaced
	// large jobs go to distinct large-free processors from Step 3.
	for p := 0; p < m; p++ {
		if selected[p] {
			continue
		}
		row := s.csr.Row(p)
		lc := s.largeCnt[p]
		smalls := row[lc:]
		cnt := s.bArr[p]
		if lc > 0 && cnt > 0 {
			removedLarge = append(removedLarge, row[lc-1])
			removals++
			cnt--
			if s.sink.Tracing() {
				s.sink.Emit("removal", obs.Fields{"target": target, "job": int(row[lc-1]), "proc": p, "kind": "large", "step": 4})
			}
		}
		for i := int32(0); i < cnt; i++ {
			removedSmall = append(removedSmall, smalls[i])
			removals++
			if s.sink.Tracing() {
				s.sink.Emit("removal", obs.Fields{"target": target, "job": int(smalls[i]), "proc": p, "kind": "small", "step": 4})
			}
		}
	}

	// The appended scratch slices may have grown; retain the capacity
	// for the next probe before any return path.
	s.removedLarge, s.removedSmall, s.freeSlots = removedLarge, removedSmall, freeSlots

	// Steps 4–5: place every displaced large job (from Steps 1 and 4) on
	// its own large-free selected processor. The counting argument in
	// DESIGN.md guarantees capacity; if violated the target is rejected.
	if len(removedLarge) > len(freeSlots) {
		return false
	}
	for i, j := range removedLarge {
		assign[j] = freeSlots[i]
	}

	// Step 6: greedy placement of the removed small jobs, largest first,
	// each onto the current minimum-load processor.
	loads := s.loads
	for p := range loads {
		loads[p] = 0
	}
	removedSet := s.removed // all-false between probes
	for _, j := range removedSmall {
		removedSet[j] = true
	}
	for j, p := range assign {
		if !removedSet[j] {
			loads[p] += sizes[j]
		}
	}
	for _, j := range removedSmall {
		removedSet[j] = false
	}
	s.smallSorter.IDs = removedSmall
	sort.Sort(&s.smallSorter)
	items := s.heapItems
	for p := range items {
		items[p] = int32(p)
	}
	instance.HeapInit(items, loads, false)
	for _, j := range removedSmall {
		p := items[0]
		assign[j] = p
		loads[p] += sizes[j]
		instance.HeapFixRoot(items, loads, false)
	}

	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	s.probeMakespan = max
	s.lastRemovals = removals
	return true
}

// procCSorter orders processor indices by increasing c_i, preferring
// large-holders on ties, index ascending last — the Step 3 selection
// order. A concrete sort.Interface so sorting allocates nothing.
type procCSorter struct {
	order    []int32
	c        []int32
	largeCnt []int32
}

func (s *procCSorter) Len() int { return len(s.order) }

func (s *procCSorter) Less(x, y int) bool {
	px, py := s.order[x], s.order[y]
	if s.c[px] != s.c[py] {
		return s.c[px] < s.c[py]
	}
	hx, hy := s.largeCnt[px] > 0, s.largeCnt[py] > 0
	if hx != hy {
		return hx
	}
	return px < py
}

func (s *procCSorter) Swap(x, y int) { s.order[x], s.order[y] = s.order[y], s.order[x] }
