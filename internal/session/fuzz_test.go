package session

import (
	"context"
	"errors"
	"testing"
)

// decodeDelta turns a 3-byte chunk into one delta against a mirror of
// the live id set. The low op bits deliberately over-represent drains
// and reused ids so the infeasible and typed-error paths fuzz as hard
// as the happy path.
func decodeDelta(op, sel, sz byte, live []int, nextID, m int) Delta {
	switch op % 8 {
	case 0, 1, 2: // arrive, fresh id, proc from sel (may be -1 or out of range)
		proc := int(sel%uint8(m+2)) - 1
		return Delta{Op: OpArrive, Job: nextID, Size: int64(sz%64) + 1, Cost: int64(sz % 4), Proc: proc}
	case 3: // depart (live when possible, unknown otherwise)
		if len(live) > 0 {
			return Delta{Op: OpDepart, Job: live[int(sel)%len(live)]}
		}
		return Delta{Op: OpDepart, Job: int(sel) + 1000}
	case 4: // resize (size 0 possible → ErrBadDelta)
		if len(live) > 0 {
			return Delta{Op: OpResize, Job: live[int(sel)%len(live)], Size: int64(sz % 64)}
		}
		return Delta{Op: OpResize, Job: int(sel) + 1000, Size: 5}
	case 5: // duplicate arrival
		if len(live) > 0 {
			return Delta{Op: OpArrive, Job: live[int(sel)%len(live)], Size: int64(sz%64) + 1}
		}
		return Delta{Op: OpProcAdd}
	case 6:
		return Delta{Op: OpProcAdd}
	default: // drain, including m == 1 (infeasible) and out of range
		return Delta{Op: OpProcDrain, Proc: int(sel % uint8(m+1))}
	}
}

// FuzzSessionDeltas replays an arbitrary byte-derived delta stream
// through a warm session and a cold full-solve oracle in lockstep:
// identical accept/reject decisions (typed errors only, state untouched
// on rejection — including infeasible drains below capacity), identical
// makespans and assignments after every accepted delta, and the move
// budget respected throughout.
func FuzzSessionDeltas(f *testing.F) {
	f.Add(uint8(2), uint8(3), []byte{0, 0, 10, 0, 1, 20, 7, 0, 0})
	f.Add(uint8(1), uint8(0), []byte{0, 0, 5, 7, 0, 0, 7, 0, 0})           // drains on m=1 → infeasible
	f.Add(uint8(4), uint8(8), []byte{0, 0, 63, 0, 1, 63, 0, 2, 63, 4, 0, 0}) // resize to zero
	f.Add(uint8(3), uint8(1), []byte{6, 0, 0, 0, 5, 9, 5, 0, 9, 3, 0, 0})  // dup arrive, proc add, depart
	f.Fuzz(func(t *testing.T, mRaw, kRaw uint8, raw []byte) {
		m := int(mRaw%5) + 1
		k := int(kRaw % 8)
		warm, err := New(Config{M: m, MoveBudget: k, AutoRebalance: true})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := New(Config{M: m, MoveBudget: k, AutoRebalance: true, Cold: true})
		if err != nil {
			t.Fatal(err)
		}
		var live []int
		nextID := 0
		if len(raw) > 96 {
			raw = raw[:96]
		}
		for i := 0; i+2 < len(raw); i += 3 {
			d := decodeDelta(raw[i], raw[i+1], raw[i+2], live, nextID, warm.M())
			if d.Op == OpArrive && d.Job == nextID {
				nextID++
			}
			preN, preM, preSpan := warm.Len(), warm.M(), warm.Makespan()
			wout, werr := warm.Apply(context.Background(), d)
			cout, cerr := cold.Apply(context.Background(), d)
			if (werr == nil) != (cerr == nil) {
				t.Fatalf("delta %d (%s): warm err %v, cold err %v", i/3, d.Op, werr, cerr)
			}
			if werr != nil {
				if !errors.Is(werr, ErrUnknownJob) && !errors.Is(werr, ErrDuplicateJob) &&
					!errors.Is(werr, ErrBadDelta) && !errors.Is(werr, ErrInfeasible) {
					t.Fatalf("delta %d: untyped rejection %v", i/3, werr)
				}
				if warm.Len() != preN || warm.M() != preM || warm.Makespan() != preSpan {
					t.Fatalf("delta %d: rejection mutated state", i/3)
				}
				continue
			}
			switch d.Op {
			case OpArrive:
				live = append(live, d.Job)
			case OpDepart:
				for x, id := range live {
					if id == d.Job {
						live = append(live[:x], live[x+1:]...)
						break
					}
				}
			}
			if wout.Makespan != cout.Makespan {
				t.Fatalf("delta %d (%s): incremental makespan %d != fresh full solve %d",
					i/3, d.Op, wout.Makespan, cout.Makespan)
			}
			if len(wout.Moves) > k {
				t.Fatalf("delta %d: %d moves exceed budget %d", i/3, len(wout.Moves), k)
			}
			wi, wids := warm.Snapshot()
			ci, cids := cold.Snapshot()
			if wi.String() != ci.String() {
				t.Fatalf("delta %d: states diverge: %s vs %s", i/3, wi, ci)
			}
			for j := range wids {
				if wids[j] != cids[j] || wi.Assign[j] != ci.Assign[j] {
					t.Fatalf("delta %d slot %d: warm job %d@%d, cold job %d@%d",
						i/3, j, wids[j], wi.Assign[j], cids[j], ci.Assign[j])
				}
			}
			if err := wi.Validate(); err != nil {
				t.Fatalf("delta %d: snapshot invalid: %v", i/3, err)
			}
		}
	})
}
