package session

import (
	"context"
	"testing"

	"repro/internal/workload"
)

// benchSession builds a steady-state session: n jobs over m processors,
// already rebalanced once so the benchmark measures per-delta work, not
// the initial spread.
func benchSession(b *testing.B, n, m, k int, cold bool) (*Session, *workload.RNG) {
	b.Helper()
	rng := workload.NewRNG(42)
	s, err := New(Config{M: m, MoveBudget: k, AutoRebalance: true, Cold: cold})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Apply(context.Background(), Delta{
			Op: OpArrive, Job: i, Size: 1 + rng.Int63n(100), Cost: rng.Int63n(4), Proc: rng.Intn(m),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return s, rng
}

// benchDeltas runs the steady-state delta mix — resize-heavy with
// arrive/depart churn at a fixed population — against a prepared
// session. Each iteration is exactly one applied delta (and its
// rebalance solve).
func benchDeltas(b *testing.B, s *Session, rng *workload.RNG, n int) {
	b.Helper()
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	next := n
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var d Delta
		switch r := rng.Intn(4); {
		case r == 0 && len(live) > n/2: // depart a random live job
			x := rng.Intn(len(live))
			d = Delta{Op: OpDepart, Job: live[x]}
			live[x] = live[len(live)-1]
			live = live[:len(live)-1]
		case r == 1 || len(live) == 0: // arrive on the least-loaded processor
			d = Delta{Op: OpArrive, Job: next, Size: 1 + rng.Int63n(100), Proc: -1}
			live = append(live, next)
			next++
		default: // resize a random live job
			d = Delta{Op: OpResize, Job: live[rng.Intn(len(live))], Size: 1 + rng.Int63n(100)}
		}
		if _, err := s.Apply(context.Background(), d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionDelta measures one delta through the warm path: the
// retained solver state makes the re-solve skip materialization,
// validation, the O(n log n) sort, and all scratch allocation.
func BenchmarkSessionDelta(b *testing.B) {
	const n, m, k = 240, 8, 8
	s, rng := benchSession(b, n, m, k, false)
	benchDeltas(b, s, rng, n)
}

// BenchmarkSessionColdResolve is the baseline the speedup claim is
// measured against: the identical delta mix with Config.Cold, so every
// rebalance materializes a snapshot and runs the cold full solve —
// exactly what a client re-submitting the whole instance per delta
// would pay. Results are byte-identical to the warm path by the
// equivalence contract; only the cost differs.
func BenchmarkSessionColdResolve(b *testing.B) {
	const n, m, k = 240, 8, 8
	s, rng := benchSession(b, n, m, k, true)
	benchDeltas(b, s, rng, n)
}
