// Package session is the stateful face of the rebalancer (ROADMAP item
// 2, DESIGN.md §15): a live job-to-processor assignment that absorbs
// typed deltas — job arrives / departs / resizes, processor added /
// drained — and re-solves after each one with warm solver state
// (core.Warm: the threshold-ladder / IncrementalScan machinery kept
// across deltas) instead of a cold full solve.
//
// Churn between consecutive solutions is bounded by the same movemin
// machinery the one-shot solvers use: budget mode runs M-PARTITION
// with at most MoveBudget migrations per delta (makespan ≤ 1.5·OPT(k),
// Lemma 4), target mode runs one PARTITION probe at a fixed target
// (movemin.Bicriteria semantics: makespan ≤ 1.5·target with optimal
// move count whenever the target is reachable).
//
// Correctness rests on an exact equivalence, not an approximation: the
// warm path produces byte-identical solutions to a cold full solve on
// the materialized snapshot (core.Warm's contract), and Config.Cold
// switches a session onto that cold path so the differential harness
// and benchmarks can hold the two in lockstep after every delta.
//
// A Session is confined to a single goroutine; internal/dispatch owns
// the per-session serialization for concurrent transports.
package session

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/instance"
	"repro/internal/movemin"
	"repro/internal/obs"
)

// Typed delta rejections. Every one of them leaves the session state
// untouched — validation happens before any mutation.
var (
	// ErrUnknownJob reports a depart/resize naming a job the session
	// does not hold.
	ErrUnknownJob = errors.New("session: unknown job id")
	// ErrDuplicateJob reports an arrival reusing a live job id.
	ErrDuplicateJob = errors.New("session: duplicate job id")
	// ErrBadDelta reports a structurally invalid delta: unknown op,
	// non-positive size, negative cost, processor out of range.
	ErrBadDelta = errors.New("session: invalid delta")
	// ErrInfeasible marks a delta no assignment can satisfy — draining
	// the last processor. It wraps instance.ErrInfeasible so transports
	// classify it like any other infeasibility (HTTP 422).
	ErrInfeasible = fmt.Errorf("session: infeasible delta: %w", instance.ErrInfeasible)
)

// Op is the delta kind.
type Op uint8

const (
	// OpArrive adds job Job with Size and Cost on processor Proc
	// (-1 places it on the least-loaded processor, Graham-style).
	OpArrive Op = iota + 1
	// OpDepart removes job Job.
	OpDepart
	// OpResize sets job Job's size to Size.
	OpResize
	// OpProcAdd grows the farm by one processor.
	OpProcAdd
	// OpProcDrain empties processor Proc (forced migrations, largest
	// job first, each to the least-loaded survivor) and removes it;
	// processors above it renumber down by one.
	OpProcDrain
)

// String names the op for errors and wire mapping.
func (o Op) String() string {
	switch o {
	case OpArrive:
		return "arrive"
	case OpDepart:
		return "depart"
	case OpResize:
		return "resize"
	case OpProcAdd:
		return "proc_add"
	case OpProcDrain:
		return "proc_drain"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Delta is one typed state change.
type Delta struct {
	Op   Op
	Job  int   // caller-assigned job id (arrive/depart/resize)
	Size int64 // arrive/resize
	Cost int64 // arrive
	Proc int   // arrive placement (-1 = least-loaded); proc_drain target
}

// Move is one migration: job Job (caller id) from processor From to To.
// For drain-forced moves, From is the drained processor in pre-drain
// numbering and To is already renumbered to the post-drain farm.
type Move struct {
	Job, From, To int
}

// Outcome describes the session state after one applied delta.
type Outcome struct {
	// Rev is the state revision (one per applied delta or explicit
	// rebalance that moved anything).
	Rev uint64
	// N and M are the live job and processor counts.
	N, M int
	// Makespan is the maximum processor load after the delta and any
	// rebalance.
	Makespan int64
	// Forced lists migrations a processor drain forced.
	Forced []Move
	// Moves lists the rebalance migrations (at most MoveBudget in
	// budget mode; move-count-optimal for the target in target mode).
	Moves []Move
	// Rebalanced reports whether a rebalance solve ran (auto sessions
	// with live jobs and a usable budget or feasible target).
	Rebalanced bool
}

// Config shapes a session. Exactly one of M (empty farm) or Initial
// (seeded; cloned, caller ids = job indices) must be set.
type Config struct {
	M       int
	Initial *instance.Instance
	// MoveBudget is the per-rebalance move budget k (budget mode; used
	// when Target == 0). 0 disables rebalancing.
	MoveBudget int
	// Target, when > 0, switches to bicriteria target mode: each
	// rebalance is one PARTITION probe at Target, skipped when the
	// target is unreachable for the current state.
	Target int64
	// AutoRebalance re-solves after every applied delta; otherwise
	// rebalancing happens only on explicit Rebalance calls.
	AutoRebalance bool
	// Cold disables warm solver reuse: every rebalance materializes a
	// snapshot and runs the cold full solve. Results are identical by
	// construction (core.Warm's contract) — this is the measurement
	// baseline for the session benchmarks and the oracle arm of the
	// differential harness, not a production mode.
	Cold bool
	// Obs is threaded into the solver (core.* metrics); nil disables.
	Obs *obs.Sink
}

// Session holds a live assignment plus the warm solver state that
// makes per-delta re-solves cheaper than cold ones.
type Session struct {
	cfg        Config
	warm       *core.Warm
	ids        []int       // slot (internal index) → caller job id
	slot       map[int]int // caller job id → slot
	rev        uint64
	totalMoves int64
}

// New builds a session.
func New(cfg Config) (*Session, error) {
	if cfg.MoveBudget < 0 {
		cfg.MoveBudget = 0
	}
	if cfg.Target < 0 {
		return nil, fmt.Errorf("%w: target %d, want >= 0", ErrBadDelta, cfg.Target)
	}
	in := cfg.Initial
	if in == nil {
		if cfg.M <= 0 {
			return nil, fmt.Errorf("%w: m = %d, want > 0", ErrBadDelta, cfg.M)
		}
		var err error
		in, err = instance.New(cfg.M, nil, nil, nil)
		if err != nil {
			return nil, err
		}
	}
	w, err := core.NewWarm(in, cfg.Obs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	s := &Session{cfg: cfg, warm: w, slot: make(map[int]int, w.N())}
	s.ids = make([]int, w.N())
	for j := range s.ids {
		s.ids[j] = j
		s.slot[j] = j
	}
	return s, nil
}

// Apply validates and applies one delta, then (for auto sessions)
// re-solves with the warm state. Typed rejections (ErrUnknownJob,
// ErrDuplicateJob, ErrBadDelta, ErrInfeasible) leave the state
// untouched. A context error can only arrive from the rebalance solve:
// the structural change has been applied, the rebalance has not — the
// state is current but unrebalanced.
func (s *Session) Apply(ctx context.Context, d Delta) (Outcome, error) {
	var forced []Move
	switch d.Op {
	case OpArrive:
		if d.Size <= 0 {
			return Outcome{}, fmt.Errorf("%w: job %d arrives with size %d, want > 0", ErrBadDelta, d.Job, d.Size)
		}
		if d.Cost < 0 {
			return Outcome{}, fmt.Errorf("%w: job %d arrives with cost %d, want >= 0", ErrBadDelta, d.Job, d.Cost)
		}
		if _, dup := s.slot[d.Job]; dup {
			return Outcome{}, fmt.Errorf("%w: %d", ErrDuplicateJob, d.Job)
		}
		proc := d.Proc
		if proc == -1 {
			proc = s.warm.MinLoadProc(-1)
		}
		if proc < 0 || proc >= s.warm.M() {
			return Outcome{}, fmt.Errorf("%w: job %d placed on processor %d, want [0,%d)", ErrBadDelta, d.Job, d.Proc, s.warm.M())
		}
		slot := s.warm.Add(d.Size, d.Cost, proc)
		s.ids = append(s.ids, d.Job)
		s.slot[d.Job] = slot
	case OpDepart:
		slot, ok := s.slot[d.Job]
		if !ok {
			return Outcome{}, fmt.Errorf("%w: %d", ErrUnknownJob, d.Job)
		}
		s.removeSlot(slot, d.Job)
	case OpResize:
		slot, ok := s.slot[d.Job]
		if !ok {
			return Outcome{}, fmt.Errorf("%w: %d", ErrUnknownJob, d.Job)
		}
		if d.Size <= 0 {
			return Outcome{}, fmt.Errorf("%w: job %d resized to %d, want > 0", ErrBadDelta, d.Job, d.Size)
		}
		s.warm.Resize(slot, d.Size)
	case OpProcAdd:
		s.warm.AddProc()
	case OpProcDrain:
		if d.Proc < 0 || d.Proc >= s.warm.M() {
			return Outcome{}, fmt.Errorf("%w: drain of processor %d, want [0,%d)", ErrBadDelta, d.Proc, s.warm.M())
		}
		if s.warm.M() == 1 {
			return Outcome{}, fmt.Errorf("%w: draining the last processor", ErrInfeasible)
		}
		forced = s.drainProc(d.Proc)
	default:
		return Outcome{}, fmt.Errorf("%w: unknown op %d", ErrBadDelta, d.Op)
	}
	s.rev++
	out := Outcome{Forced: forced}
	if s.cfg.AutoRebalance {
		moves, ran, err := s.rebalance(ctx, s.cfg.MoveBudget, s.cfg.Target)
		if err != nil {
			return Outcome{}, err
		}
		out.Moves, out.Rebalanced = moves, ran
	}
	s.fill(&out)
	return out, nil
}

// Rebalance runs one explicit budget-mode rebalance with move budget k
// (the online auto-rebalancer's entry point) and returns the applied
// migrations.
func (s *Session) Rebalance(ctx context.Context, k int) ([]Move, error) {
	moves, _, err := s.rebalance(ctx, k, 0)
	if len(moves) > 0 {
		s.rev++
	}
	return moves, err
}

// rebalance solves the current state (warm or cold per config, budget
// or target mode per arguments) and applies the resulting migrations.
func (s *Session) rebalance(ctx context.Context, k int, target int64) ([]Move, bool, error) {
	if s.warm.N() == 0 || (target <= 0 && k <= 0) {
		return nil, false, nil
	}
	var sol instance.Solution
	feasible := true
	if s.cfg.Cold {
		snap := s.warm.Snapshot()
		if target > 0 {
			sol, _, feasible = movemin.Bicriteria(snap, target)
		} else {
			var err error
			sol, err = core.MPartitionCtx(ctx, snap, k, core.IncrementalScan, s.cfg.Obs)
			if err != nil {
				return nil, false, err
			}
		}
	} else {
		if target > 0 {
			r := s.warm.Probe(target)
			sol, feasible = r.Solution, r.Feasible
		} else {
			var err error
			sol, err = s.warm.Solve(ctx, k)
			if err != nil {
				return nil, false, err
			}
		}
	}
	if !feasible {
		return nil, false, nil
	}
	var moves []Move
	for j, p := range sol.Assign {
		if from := s.warm.AssignOf(j); p != from {
			moves = append(moves, Move{Job: s.ids[j], From: from, To: p})
			s.warm.Move(j, p)
		}
	}
	s.totalMoves += int64(len(moves))
	return moves, true, nil
}

// drainProc migrates every job off p (largest first, each to the
// least-loaded survivor) and removes the processor. Returned moves
// carry post-drain To numbering.
func (s *Session) drainProc(p int) []Move {
	var moves []Move
	for row := s.warm.Row(p); len(row) > 0; row = s.warm.Row(p) {
		j := int(row[0])
		to := s.warm.MinLoadProc(p)
		s.warm.Move(j, to)
		if to > p {
			to--
		}
		moves = append(moves, Move{Job: s.ids[j], From: p, To: to})
	}
	s.warm.RemoveProc(p)
	s.totalMoves += int64(len(moves))
	return moves
}

// removeSlot deletes the job in slot, mirroring core.Warm's
// swap-remove: the job in the last slot takes its place.
func (s *Session) removeSlot(slot int, id int) {
	s.warm.Remove(slot)
	last := len(s.ids) - 1
	if slot != last {
		moved := s.ids[last]
		s.ids[slot] = moved
		s.slot[moved] = slot
	}
	s.ids = s.ids[:last]
	delete(s.slot, id)
}

// fill stamps the current state summary into out.
func (s *Session) fill(out *Outcome) {
	out.Rev = s.rev
	out.N = s.warm.N()
	out.M = s.warm.M()
	out.Makespan = s.warm.Makespan()
}

// Len returns the live job count.
func (s *Session) Len() int { return s.warm.N() }

// M returns the live processor count.
func (s *Session) M() int { return s.warm.M() }

// Rev returns the state revision.
func (s *Session) Rev() uint64 { return s.rev }

// TotalMoves returns the cumulative migrations (forced + rebalance)
// applied over the session's lifetime.
func (s *Session) TotalMoves() int64 { return s.totalMoves }

// Makespan returns the current maximum processor load.
func (s *Session) Makespan() int64 { return s.warm.Makespan() }

// LowerBound returns the packing lower bound of the live state.
func (s *Session) LowerBound() int64 {
	if s.warm.N() == 0 {
		return 0
	}
	return s.warm.LowerBound()
}

// Loads returns a copy of the per-processor loads.
func (s *Session) Loads() []int64 { return s.warm.Loads(nil) }

// ProcOf returns the processor currently hosting the job.
func (s *Session) ProcOf(id int) (int, bool) {
	slot, ok := s.slot[id]
	if !ok {
		return 0, false
	}
	return s.warm.AssignOf(slot), true
}

// Size returns the job's current size.
func (s *Session) Size(id int) (int64, bool) {
	slot, ok := s.slot[id]
	if !ok {
		return 0, false
	}
	return s.warm.JobSize(slot), true
}

// Snapshot materializes the current state as an Instance (jobs in
// internal slot order — the order the warm/cold equivalence is stated
// against) plus the slot→caller-id mapping.
func (s *Session) Snapshot() (*instance.Instance, []int) {
	return s.warm.Snapshot(), append([]int(nil), s.ids...)
}
