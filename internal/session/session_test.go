package session

import (
	"context"
	"errors"
	"testing"

	"repro/internal/instance"
)

func mustApply(t *testing.T, s *Session, d Delta) Outcome {
	t.Helper()
	out, err := s.Apply(context.Background(), d)
	if err != nil {
		t.Fatalf("apply %s job %d: %v", d.Op, d.Job, err)
	}
	return out
}

func TestSessionLifecycle(t *testing.T) {
	s, err := New(Config{M: 2, MoveBudget: 4, AutoRebalance: true})
	if err != nil {
		t.Fatal(err)
	}
	out := mustApply(t, s, Delta{Op: OpArrive, Job: 100, Size: 10, Proc: 0})
	if out.Rev != 1 || out.N != 1 || out.M != 2 || out.Makespan != 10 {
		t.Fatalf("after first arrival: %+v", out)
	}
	// Least-loaded placement: proc 0 holds 10, so -1 goes to proc 1.
	mustApply(t, s, Delta{Op: OpArrive, Job: 101, Size: 4, Proc: -1})
	if p, ok := s.ProcOf(101); !ok || p != 1 {
		t.Fatalf("least-loaded placement: proc %d ok %v", p, ok)
	}
	out = mustApply(t, s, Delta{Op: OpResize, Job: 101, Size: 25})
	if out.Makespan != 25 {
		t.Fatalf("resize makespan %d", out.Makespan)
	}
	if sz, ok := s.Size(101); !ok || sz != 25 {
		t.Fatalf("size after resize: %d ok %v", sz, ok)
	}
	out = mustApply(t, s, Delta{Op: OpDepart, Job: 100})
	if out.N != 1 || s.Len() != 1 {
		t.Fatalf("after depart: %+v", out)
	}
	if _, ok := s.ProcOf(100); ok {
		t.Fatal("departed job still resolvable")
	}
	out = mustApply(t, s, Delta{Op: OpProcAdd})
	if out.M != 3 || s.M() != 3 {
		t.Fatalf("after proc add: %+v", out)
	}
}

func TestSessionSeededInitial(t *testing.T) {
	in := instance.MustNew(2, []int64{10, 20, 30}, nil, []int{0, 1, 0})
	s, err := New(Config{Initial: in})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.M() != 2 || s.Makespan() != 40 {
		t.Fatalf("seeded state: n=%d m=%d makespan=%d", s.Len(), s.M(), s.Makespan())
	}
	// Seed ids are the job indices.
	for id := 0; id < 3; id++ {
		if _, ok := s.ProcOf(id); !ok {
			t.Fatalf("seed id %d unresolvable", id)
		}
	}
	// The seed instance was cloned, not captured.
	mustApply(t, s, Delta{Op: OpDepart, Job: 0})
	if in.N() != 3 {
		t.Fatal("session mutated the caller's instance")
	}
}

func TestSessionTypedErrors(t *testing.T) {
	s, err := New(Config{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, Delta{Op: OpArrive, Job: 7, Size: 5})
	cases := []struct {
		name string
		d    Delta
		want error
	}{
		{"duplicate arrive", Delta{Op: OpArrive, Job: 7, Size: 5}, ErrDuplicateJob},
		{"zero size arrive", Delta{Op: OpArrive, Job: 8, Size: 0}, ErrBadDelta},
		{"negative cost arrive", Delta{Op: OpArrive, Job: 8, Size: 5, Cost: -1}, ErrBadDelta},
		{"bad proc arrive", Delta{Op: OpArrive, Job: 8, Size: 5, Proc: 9}, ErrBadDelta},
		{"unknown depart", Delta{Op: OpDepart, Job: 99}, ErrUnknownJob},
		{"unknown resize", Delta{Op: OpResize, Job: 99, Size: 5}, ErrUnknownJob},
		{"zero resize", Delta{Op: OpResize, Job: 7, Size: 0}, ErrBadDelta},
		{"bad drain proc", Delta{Op: OpProcDrain, Proc: 5}, ErrBadDelta},
		{"unknown op", Delta{Op: Op(99)}, ErrBadDelta},
	}
	for _, tc := range cases {
		rev := s.Rev()
		if _, err := s.Apply(context.Background(), tc.d); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if s.Rev() != rev || s.Len() != 1 || s.M() != 2 {
			t.Errorf("%s: rejection mutated state", tc.name)
		}
	}
}

func TestSessionDrainLastProcInfeasible(t *testing.T) {
	s, err := New(Config{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, Delta{Op: OpArrive, Job: 1, Size: 5})
	_, err = s.Apply(context.Background(), Delta{Op: OpProcDrain, Proc: 0})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if !errors.Is(err, instance.ErrInfeasible) {
		t.Fatal("ErrInfeasible must wrap instance.ErrInfeasible for transport mapping")
	}
	if s.M() != 1 || s.Len() != 1 {
		t.Fatal("infeasible drain mutated state")
	}
}

func TestSessionDrainForcedMoves(t *testing.T) {
	// Three processors; drain the middle one. Forced moves must carry
	// pre-drain From and post-drain To numbering.
	in := instance.MustNew(3, []int64{10, 8, 2}, nil, []int{1, 1, 2})
	s, err := New(Config{Initial: in})
	if err != nil {
		t.Fatal(err)
	}
	out := mustApply(t, s, Delta{Op: OpProcDrain, Proc: 1})
	if out.M != 2 || s.M() != 2 {
		t.Fatalf("m = %d after drain", out.M)
	}
	if len(out.Forced) != 2 {
		t.Fatalf("forced = %+v, want 2 moves", out.Forced)
	}
	// Largest first: job 0 (size 10) to proc 0 (load 0); then job 1
	// (size 8) to post-drain proc 1 (old proc 2, load 2).
	if out.Forced[0] != (Move{Job: 0, From: 1, To: 0}) {
		t.Fatalf("forced[0] = %+v", out.Forced[0])
	}
	if out.Forced[1] != (Move{Job: 1, From: 1, To: 1}) {
		t.Fatalf("forced[1] = %+v", out.Forced[1])
	}
	if p, _ := s.ProcOf(2); p != 1 {
		t.Fatalf("job 2 renumbered to proc %d, want 1", p)
	}
	if s.TotalMoves() != 2 {
		t.Fatalf("total moves %d", s.TotalMoves())
	}
}

func TestSessionExplicitRebalance(t *testing.T) {
	// All load on processor 0; explicit rebalance with a generous budget
	// must spread it and bump the revision.
	s, err := New(Config{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		mustApply(t, s, Delta{Op: OpArrive, Job: i, Size: 10, Proc: 0})
	}
	before, rev := s.Makespan(), s.Rev()
	moves, err := s.Rebalance(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 || len(moves) > 12 {
		t.Fatalf("moves = %d, want 1..12", len(moves))
	}
	if s.Makespan() >= before {
		t.Fatalf("makespan %d did not improve on %d", s.Makespan(), before)
	}
	if s.Rev() != rev+1 {
		t.Fatalf("rev %d, want %d", s.Rev(), rev+1)
	}
	// k = 0 is a no-op with no revision bump.
	rev = s.Rev()
	if moves, err := s.Rebalance(context.Background(), 0); err != nil || len(moves) != 0 || s.Rev() != rev {
		t.Fatalf("k=0 rebalance: moves=%d err=%v rev=%d", len(moves), err, s.Rev())
	}
}

func TestSessionTargetMode(t *testing.T) {
	// Target mode: every accepted rebalance lands makespan ≤ 1.5·target
	// (the bicriteria bound) whenever the probe is feasible.
	s, err := New(Config{M: 3, Target: 30, AutoRebalance: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		out := mustApply(t, s, Delta{Op: OpArrive, Job: i, Size: 10, Proc: 0})
		if out.Rebalanced && out.Makespan > 45 {
			t.Fatalf("delta %d: makespan %d > 1.5·target", i, out.Makespan)
		}
	}
	if s.Makespan() > 45 {
		t.Fatalf("final makespan %d > 45", s.Makespan())
	}
}

func TestSessionSnapshotIDs(t *testing.T) {
	s, err := New(Config{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, Delta{Op: OpArrive, Job: 50, Size: 5, Proc: 0})
	mustApply(t, s, Delta{Op: OpArrive, Job: 51, Size: 7, Proc: 1})
	mustApply(t, s, Delta{Op: OpDepart, Job: 50}) // 51 swaps into slot 0
	snap, ids := s.Snapshot()
	if snap.N() != 1 || len(ids) != 1 || ids[0] != 51 {
		t.Fatalf("snapshot: n=%d ids=%v", snap.N(), ids)
	}
	if snap.Jobs[0].Size != 7 || snap.Assign[0] != 1 {
		t.Fatalf("snapshot slot 0: %+v @%d", snap.Jobs[0], snap.Assign[0])
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionConfigValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("empty config: %v", err)
	}
	if _, err := New(Config{M: 2, Target: -1}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("negative target: %v", err)
	}
	if s, err := New(Config{M: 2, MoveBudget: -5}); err != nil || s == nil {
		t.Fatalf("negative budget should clamp: %v", err)
	}
}
