package session

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/instance"
	"repro/internal/workload"
)

// streamState mirrors the caller-visible session surface while a
// random delta stream is generated: live ids and the processor count.
type streamState struct {
	rng    *workload.RNG
	nextID int
	live   []int
	m      int
}

// next draws one delta — mostly valid, with a deliberate tail of
// invalid and infeasible ones so the error paths run under the same
// differential lockstep as the happy path.
func (st *streamState) next() Delta {
	switch r := st.rng.Intn(100); {
	case r < 35: // arrive
		id := st.nextID
		st.nextID++
		proc := st.rng.Intn(st.m + 1)
		if proc == st.m {
			proc = -1 // least-loaded placement
		}
		return Delta{Op: OpArrive, Job: id, Size: 1 + st.rng.Int63n(60), Cost: st.rng.Int63n(4), Proc: proc}
	case r < 50: // depart
		if len(st.live) == 0 {
			id := st.nextID
			st.nextID++
			return Delta{Op: OpArrive, Job: id, Size: 1 + st.rng.Int63n(60), Proc: -1}
		}
		return Delta{Op: OpDepart, Job: st.live[st.rng.Intn(len(st.live))]}
	case r < 65: // resize
		if len(st.live) == 0 {
			id := st.nextID
			st.nextID++
			return Delta{Op: OpArrive, Job: id, Size: 1 + st.rng.Int63n(60), Proc: -1}
		}
		return Delta{Op: OpResize, Job: st.live[st.rng.Intn(len(st.live))], Size: 1 + st.rng.Int63n(60)}
	case r < 72: // proc add
		return Delta{Op: OpProcAdd}
	case r < 85: // proc drain (infeasible when m == 1)
		return Delta{Op: OpProcDrain, Proc: st.rng.Intn(st.m)}
	case r < 90: // invalid: depart unknown id
		return Delta{Op: OpDepart, Job: -1 - st.rng.Intn(1000)}
	case r < 93: // invalid: duplicate arrival
		if len(st.live) == 0 {
			return Delta{Op: OpDepart, Job: -7}
		}
		return Delta{Op: OpArrive, Job: st.live[0], Size: 5}
	case r < 96: // invalid: resize to zero
		if len(st.live) == 0 {
			return Delta{Op: OpResize, Job: -7, Size: 0}
		}
		return Delta{Op: OpResize, Job: st.live[0], Size: 0}
	case r < 98: // invalid: arrival on an out-of-range processor
		id := st.nextID
		st.nextID++
		return Delta{Op: OpArrive, Job: id, Size: 5, Proc: st.m + 3}
	default: // invalid: drain of an out-of-range processor
		return Delta{Op: OpProcDrain, Proc: st.m + 2}
	}
}

// note updates the mirror after a delta was accepted.
func (st *streamState) note(d Delta) {
	switch d.Op {
	case OpArrive:
		st.live = append(st.live, d.Job)
	case OpDepart:
		for i, id := range st.live {
			if id == d.Job {
				st.live = append(st.live[:i], st.live[i+1:]...)
				break
			}
		}
	case OpProcAdd:
		st.m++
	case OpProcDrain:
		st.m--
	}
}

// assertSameState fails unless the two sessions hold byte-identical
// materialized states.
func assertSameState(t *testing.T, tag string, warm, cold *Session) {
	t.Helper()
	wi, wids := warm.Snapshot()
	ci, cids := cold.Snapshot()
	if wi.M != ci.M || wi.N() != ci.N() {
		t.Fatalf("%s: warm state %s != cold state %s", tag, wi, ci)
	}
	for j := range wids {
		if wids[j] != cids[j] {
			t.Fatalf("%s: slot %d holds job %d warm, %d cold", tag, j, wids[j], cids[j])
		}
		if wi.Jobs[j] != ci.Jobs[j] || wi.Assign[j] != ci.Assign[j] {
			t.Fatalf("%s: slot %d: warm %+v@%d, cold %+v@%d",
				tag, j, wi.Jobs[j], wi.Assign[j], ci.Jobs[j], ci.Assign[j])
		}
	}
}

// runDifferentialStream drives one random delta stream through a warm
// session and a cold-oracle session in lockstep: after EVERY delta the
// incremental result must equal the fresh full solve on the
// materialized instance (the cold arm re-solves from a snapshot each
// time), the move count must respect the budget, and typed rejections
// must match and leave both states untouched.
func runDifferentialStream(t *testing.T, seed uint64, deltas int) {
	rng := workload.NewRNG(seed)
	cfg := Config{
		M:             2 + rng.Intn(4),
		AutoRebalance: true,
	}
	if rng.Intn(4) == 0 {
		cfg.Target = 40 + rng.Int63n(100)
	} else {
		cfg.MoveBudget = rng.Intn(7)
	}
	warmCfg, coldCfg := cfg, cfg
	coldCfg.Cold = true
	warm, err := New(warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := New(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	st := &streamState{rng: rng, m: cfg.M}
	for i := 0; i < deltas; i++ {
		d := st.next()
		tag := fmt.Sprintf("seed %d delta %d (%s job %d size %d proc %d)", seed, i, d.Op, d.Job, d.Size, d.Proc)
		preSnap, _ := warm.Snapshot()
		wout, werr := warm.Apply(context.Background(), d)
		cout, cerr := cold.Apply(context.Background(), d)
		if (werr == nil) != (cerr == nil) {
			t.Fatalf("%s: warm err %v, cold err %v", tag, werr, cerr)
		}
		if werr != nil {
			// Same typed class, and the state is untouched.
			for _, sentinel := range []error{ErrUnknownJob, ErrDuplicateJob, ErrBadDelta, ErrInfeasible} {
				if errors.Is(werr, sentinel) != errors.Is(cerr, sentinel) {
					t.Fatalf("%s: warm %v and cold %v classify differently on %v", tag, werr, cerr, sentinel)
				}
			}
			if !errors.Is(werr, ErrUnknownJob) && !errors.Is(werr, ErrDuplicateJob) &&
				!errors.Is(werr, ErrBadDelta) && !errors.Is(werr, ErrInfeasible) {
				t.Fatalf("%s: untyped rejection %v", tag, werr)
			}
			postSnap, _ := warm.Snapshot()
			if preSnap.String() != postSnap.String() || preSnap.InitialMakespan() != postSnap.InitialMakespan() {
				t.Fatalf("%s: rejected delta mutated state: %s -> %s", tag, preSnap, postSnap)
			}
			assertSameState(t, tag, warm, cold)
			continue
		}
		st.note(d)
		// The cold arm's makespan IS the fresh-full-solve answer on the
		// materialized instance; the warm arm must match it exactly.
		if wout.Makespan != cout.Makespan {
			t.Fatalf("%s: incremental makespan %d != fresh full solve %d", tag, wout.Makespan, cout.Makespan)
		}
		if cfg.Target == 0 && len(wout.Moves) > cfg.MoveBudget {
			t.Fatalf("%s: %d rebalance moves exceed budget %d", tag, len(wout.Moves), cfg.MoveBudget)
		}
		if len(wout.Moves) != len(cout.Moves) {
			t.Fatalf("%s: warm made %d moves, cold %d", tag, len(wout.Moves), len(cout.Moves))
		}
		// Lockstep assignments: equality must hold state-for-state, not
		// just on summary numbers, or divergence could compound silently.
		assertSameState(t, tag, warm, cold)
		// Loads bookkeeping stays consistent with a fresh recompute.
		snap, _ := warm.Snapshot()
		fresh := snap.Loads(snap.Assign)
		for p, l := range warm.Loads() {
			if l != fresh[p] {
				t.Fatalf("%s: incremental load[%d] = %d, fresh %d", tag, p, l, fresh[p])
			}
		}
		if wout.M != st.m || wout.N != len(st.live) {
			t.Fatalf("%s: outcome n=%d m=%d, mirror n=%d m=%d", tag, wout.N, wout.M, len(st.live), st.m)
		}
	}
}

// TestSessionDifferential is the acceptance harness: ≥200 random delta
// streams, every delta cross-checked against a fresh full solve.
func TestSessionDifferential(t *testing.T) {
	streams, deltas := 220, 15
	if testing.Short() {
		streams = 40
	}
	for seed := 0; seed < streams; seed++ {
		runDifferentialStream(t, uint64(seed), deltas)
	}
}

// TestSessionMetamorphicCanonicalKey is the metamorphic arm: a delta
// stream and a snapshot-equivalent permutation of it (the same arrival
// multiset applied in a different order, explicit placements, no
// rebalancing) must materialize instances with identical canonical
// cache keys — the cache's canonical form erases arrival order, so any
// divergence means session state depends on history it shouldn't.
func TestSessionMetamorphicCanonicalKey(t *testing.T) {
	spec, ok := engine.Lookup("mpartition")
	if !ok {
		t.Fatal("mpartition not registered")
	}
	for seed := uint64(0); seed < 40; seed++ {
		rng := workload.NewRNG(seed)
		m := 2 + rng.Intn(4)
		n := 5 + rng.Intn(20)
		deltas := make([]Delta, n)
		for i := range deltas {
			deltas[i] = Delta{
				Op: OpArrive, Job: i,
				Size: 1 + rng.Int63n(50), Cost: rng.Int63n(3),
				Proc: rng.Intn(m),
			}
		}
		perm := rng.Perm(n)

		build := func(order []int) cache.Key {
			s, err := New(Config{M: m})
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range order {
				if _, err := s.Apply(context.Background(), deltas[i]); err != nil {
					t.Fatal(err)
				}
			}
			snap, _ := s.Snapshot()
			ext := instance.Extended{Instance: *snap}
			return cache.Canonicalize("mpartition", spec.Caps, &ext, engine.Params{K: 3}).Key
		}

		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		if build(identity) != build(perm) {
			t.Fatalf("seed %d: canonical keys diverge between a stream and its permutation", seed)
		}
	}
}
