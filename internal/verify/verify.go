// Package verify independently checks solutions produced by the
// rebalancing algorithms. It recomputes every metric from scratch so a
// bug in an algorithm's own bookkeeping cannot mask a constraint
// violation. Every algorithm's output is routed through this package in
// the test suite and the experiment harness.
package verify

import (
	"fmt"

	"repro/internal/instance"
)

// Report is the result of checking a solution against an instance and
// its constraints.
type Report struct {
	Makespan int64
	Moves    int
	MoveCost int64
}

// Solution checks that assign is a complete valid assignment for in and
// returns recomputed metrics.
func Solution(in *instance.Instance, assign []int) (Report, error) {
	var rep Report
	if len(assign) != in.N() {
		return rep, fmt.Errorf("verify: assignment has %d entries, want %d", len(assign), in.N())
	}
	loads := make([]int64, in.M)
	for j, p := range assign {
		if p < 0 || p >= in.M {
			return rep, fmt.Errorf("verify: job %d assigned to processor %d, want [0,%d)", j, p, in.M)
		}
		loads[p] += in.Jobs[j].Size
	}
	for _, l := range loads {
		if l > rep.Makespan {
			rep.Makespan = l
		}
	}
	for j := range assign {
		if assign[j] != in.Assign[j] {
			rep.Moves++
			rep.MoveCost += in.Jobs[j].Cost
		}
	}
	return rep, nil
}

// WithinMoves checks the unit-cost constraint: the assignment is valid
// and relocates at most k jobs. It returns the recomputed report.
func WithinMoves(in *instance.Instance, assign []int, k int) (Report, error) {
	rep, err := Solution(in, assign)
	if err != nil {
		return rep, err
	}
	if rep.Moves > k {
		return rep, fmt.Errorf("verify: %d moves exceed budget k=%d", rep.Moves, k)
	}
	return rep, nil
}

// WithinBudget checks the arbitrary-cost constraint: the assignment is
// valid and its total relocation cost is at most budget.
func WithinBudget(in *instance.Instance, assign []int, budget int64) (Report, error) {
	rep, err := Solution(in, assign)
	if err != nil {
		return rep, err
	}
	if rep.MoveCost > budget {
		return rep, fmt.Errorf("verify: cost %d exceeds budget %d", rep.MoveCost, budget)
	}
	return rep, nil
}

// Ratio returns makespan/opt as a float64 approximation ratio. It panics
// if opt <= 0 since every valid instance has a positive optimum.
func Ratio(makespan, opt int64) float64 {
	if opt <= 0 {
		panic(fmt.Sprintf("verify: Ratio with opt=%d", opt))
	}
	return float64(makespan) / float64(opt)
}

// AllowedSets checks the Constrained Load Rebalancing restriction: every
// job resides on a processor in its allowed set. allowed[j] lists the
// permissible processors of job j; a nil entry means unrestricted.
func AllowedSets(in *instance.Instance, assign []int, allowed [][]int) error {
	if len(allowed) != in.N() {
		return fmt.Errorf("verify: %d allowed sets, want %d", len(allowed), in.N())
	}
	for j, p := range assign {
		if allowed[j] == nil {
			continue
		}
		ok := false
		for _, q := range allowed[j] {
			if q == p {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("verify: job %d on processor %d not in allowed set %v", j, p, allowed[j])
		}
	}
	return nil
}

// NoConflicts checks the Conflict Scheduling restriction: no conflicting
// pair of jobs shares a processor. conflicts is a list of job-ID pairs.
func NoConflicts(assign []int, conflicts [][2]int) error {
	for _, c := range conflicts {
		a, b := c[0], c[1]
		if a < 0 || a >= len(assign) || b < 0 || b >= len(assign) {
			return fmt.Errorf("verify: conflict pair %v out of range", c)
		}
		if assign[a] == assign[b] {
			return fmt.Errorf("verify: conflicting jobs %d and %d share processor %d", a, b, assign[a])
		}
	}
	return nil
}
