package verify

import (
	"testing"

	"repro/internal/instance"
)

func inst() *instance.Instance {
	return instance.MustNew(2, []int64{4, 2, 3}, []int64{10, 20, 30}, []int{0, 0, 1})
}

func TestSolutionMetrics(t *testing.T) {
	rep, err := Solution(inst(), []int{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 7 || rep.Moves != 1 || rep.MoveCost != 10 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSolutionRejectsBadShape(t *testing.T) {
	if _, err := Solution(inst(), []int{0, 0}); err == nil {
		t.Fatal("accepted short assignment")
	}
	if _, err := Solution(inst(), []int{0, 0, 2}); err == nil {
		t.Fatal("accepted out-of-range processor")
	}
	if _, err := Solution(inst(), []int{0, 0, -1}); err == nil {
		t.Fatal("accepted negative processor")
	}
}

func TestWithinMoves(t *testing.T) {
	if _, err := WithinMoves(inst(), []int{1, 1, 0}, 3); err != nil {
		t.Fatalf("3 moves within k=3 rejected: %v", err)
	}
	if _, err := WithinMoves(inst(), []int{1, 1, 0}, 2); err == nil {
		t.Fatal("3 moves within k=2 accepted")
	}
	if _, err := WithinMoves(inst(), []int{0, 0, 1}, 0); err != nil {
		t.Fatalf("identity with k=0 rejected: %v", err)
	}
}

func TestWithinBudget(t *testing.T) {
	// Moving jobs 0 and 2 costs 40.
	if _, err := WithinBudget(inst(), []int{1, 0, 0}, 40); err != nil {
		t.Fatalf("cost 40 within 40 rejected: %v", err)
	}
	if _, err := WithinBudget(inst(), []int{1, 0, 0}, 39); err == nil {
		t.Fatal("cost 40 within 39 accepted")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 2); got != 1.5 {
		t.Fatalf("Ratio = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Ratio(1,0) did not panic")
		}
	}()
	Ratio(1, 0)
}

func TestAllowedSets(t *testing.T) {
	in := inst()
	allowed := [][]int{{0, 1}, nil, {1}}
	if err := AllowedSets(in, []int{1, 0, 1}, allowed); err != nil {
		t.Fatalf("legal assignment rejected: %v", err)
	}
	if err := AllowedSets(in, []int{1, 0, 0}, allowed); err == nil {
		t.Fatal("job 2 on forbidden processor accepted")
	}
	if err := AllowedSets(in, []int{0, 0, 1}, [][]int{nil}); err == nil {
		t.Fatal("wrong allowed length accepted")
	}
}

func TestNoConflicts(t *testing.T) {
	if err := NoConflicts([]int{0, 1, 0}, [][2]int{{0, 1}}); err != nil {
		t.Fatalf("conflict-free rejected: %v", err)
	}
	if err := NoConflicts([]int{0, 1, 0}, [][2]int{{0, 2}}); err == nil {
		t.Fatal("shared-processor conflict accepted")
	}
	if err := NoConflicts([]int{0}, [][2]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range pair accepted")
	}
}
