package rebalance

import "testing"

// Golden regression suite: hand-analyzed instances with known optimal
// values for every budget, pinned across the whole algorithm stack. Any
// behavioural drift in the solvers shows up here first.
func TestGoldenInstances(t *testing.T) {
	cases := []struct {
		name   string
		m      int
		sizes  []int64
		assign []int
		k      int
		opt    int64 // exact optimum with k moves
	}{
		{
			// Everything on processor 0; one move takes the 4.
			name: "two-jobs-one-move",
			m:    2, sizes: []int64{4, 3}, assign: []int{0, 0},
			k: 1, opt: 4,
		},
		{
			// {6,5,4,3,2,1} piled up; full freedom reaches ceil(21/3)=7.
			name: "six-jobs-full-freedom",
			m:    3, sizes: []int64{6, 5, 4, 3, 2, 1}, assign: []int{0, 0, 0, 0, 0, 0},
			k: 6, opt: 7,
		},
		{
			// Zero budget pins the initial makespan.
			name: "zero-budget",
			m:    2, sizes: []int64{4, 3, 2}, assign: []int{0, 0, 1},
			k: 0, opt: 7,
		},
		{
			// One move: the best single relocation moves the 4 from
			// processor 0 ({4,3} vs {5}) to reach max(3, 5+... no:
			// moving 4 onto p1 gives {3} vs {5,4}=9; moving 5 from p1
			// to p0 gives {4,3,5} — worse; moving 3: {4} vs {5,3}=8.
			// Best is moving the 3: makespan 8? No — {4} and {5,3}:
			// max = 8; moving 4: max(3, 9) = 9; keep: max(7,5)=7.
			// Doing nothing is best: 7.
			name: "one-move-cannot-help",
			m:    2, sizes: []int64{4, 3, 5}, assign: []int{0, 0, 1},
			k: 1, opt: 7,
		},
		{
			// The paper's Theorem 2 instance: OPT = 2 with one move.
			name: "paper-partition-tight",
			m:    2, sizes: []int64{1, 2, 1}, assign: []int{0, 0, 1},
			k: 1, opt: 2,
		},
		{
			// Three equal giants on two processors: one must pair up.
			name: "three-giants",
			m:    2, sizes: []int64{10, 10, 10}, assign: []int{0, 0, 0},
			k: 3, opt: 20,
		},
		{
			// m = 1: moves are pointless.
			name: "single-processor",
			m:    1, sizes: []int64{5, 4, 3}, assign: []int{0, 0, 0},
			k: 3, opt: 12,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := MustNew(c.m, c.sizes, nil, c.assign)
			opt, err := Exact(in, c.k)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Makespan != c.opt {
				t.Fatalf("exact = %d, analyzed optimum %d", opt.Makespan, c.opt)
			}
			// Approximations within their bounds on the pinned optimum.
			mp := Partition(in, c.k)
			if err := CheckMoves(in, mp, c.k); err != nil {
				t.Fatal(err)
			}
			if 2*mp.Makespan > 3*c.opt {
				t.Fatalf("mpartition %d > 1.5·%d", mp.Makespan, c.opt)
			}
			g := Greedy(in, c.k)
			if err := CheckMoves(in, g, c.k); err != nil {
				t.Fatal(err)
			}
			if int64(c.m)*g.Makespan > (2*int64(c.m)-1)*c.opt {
				t.Fatalf("greedy %d > (2−1/m)·%d", g.Makespan, c.opt)
			}
			pt, err := PTAS(in, int64(c.k), PTASOptions{Eps: 0.75})
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckMoves(in, pt, c.k); err != nil {
				t.Fatal(err)
			}
			if 4*pt.Makespan > 7*c.opt {
				t.Fatalf("ptas %d > 1.75·%d", pt.Makespan, c.opt)
			}
			gp, err := GAPBaseline(in, int64(c.k))
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckMoves(in, gp, c.k); err != nil {
				t.Fatal(err)
			}
			if gp.Makespan > 2*c.opt {
				t.Fatalf("gap %d > 2·%d", gp.Makespan, c.opt)
			}
			// The LP bound brackets from below.
			lb, err := LPBoundMoves(in, c.k)
			if err != nil {
				t.Fatal(err)
			}
			if lb > c.opt {
				t.Fatalf("LP bound %d > optimum %d", lb, c.opt)
			}
		})
	}
}
