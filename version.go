package rebalance

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
)

// version is computed once; build info is immutable for a process.
var versionOnce = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "rebalance (no build info)"
	}
	v := bi.Main.Version
	if v == "" {
		v = "(devel)"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			if len(s.Value) >= 12 {
				rev = s.Value[:12]
			} else {
				rev = s.Value
			}
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	// Pseudo-versions already embed the revision; only append it (and
	// the dirty marker) when the module version does not carry it.
	if rev != "" && !strings.Contains(v, rev) {
		return fmt.Sprintf("rebalance %s %s%s %s", v, rev, dirty, bi.GoVersion)
	}
	if dirty != "" && !strings.Contains(v, dirty) {
		v += dirty
	}
	return fmt.Sprintf("rebalance %s %s", v, bi.GoVersion)
})

// Version returns the build-info string stamped into trace headers,
// metrics summaries and -version output: module version, VCS revision
// when embedded, and the Go toolchain version.
func Version() string { return versionOnce() }
