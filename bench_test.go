// Benchmarks: one per experiment of the evaluation suite (DESIGN.md §3).
// Each benchmark exercises the code path its experiment measures;
// cmd/experiments prints the corresponding tables.
package rebalance

import (
	"context"

	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/conflict"
	"repro/internal/constrained"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gap"
	"repro/internal/greedy"
	"repro/internal/hardness"
	"repro/internal/instance"
	"repro/internal/lpbound"
	"repro/internal/movemin"
	"repro/internal/ptas"
	"repro/internal/scheduling"
	"repro/internal/sim"
	"repro/internal/workload"
)

var benchSink uint64

// BenchmarkCalibration is a fixed pure-CPU workload (a splitmix64
// scramble, independent of everything this repository optimizes) used
// by cmd/benchdiff to normalize wall-clock comparisons for
// machine-speed drift: on a time-shared machine an entire run can sit
// in a window 10–50% slower than the one the baseline was recorded in,
// and the ratio of this benchmark between the two snapshots measures
// that ambient drift independently of the code under test. Changing
// this function invalidates the normalization of every committed
// baseline — regenerate BENCH.json in the same change.
func BenchmarkCalibration(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		x := uint64(i)
		for j := 0; j < 1<<14; j++ {
			x += 0x9e3779b97f4a7c15
			z := x
			z ^= z >> 30
			z *= 0xbf58476d1ce4e5b9
			z ^= z >> 27
			z *= 0x94d049bb133111eb
			z ^= z >> 31
			acc += z
		}
	}
	benchSink = acc
}

// E1 — Theorem 1 tightness: adversarial GREEDY on the paper's instance.
func BenchmarkE1GreedyTightness(b *testing.B) {
	for _, m := range []int{8, 32} {
		in := instance.GreedyTight(m)
		k := instance.GreedyTightK(m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol := greedy.Rebalance(in, k, greedy.OrderSmallestFirst)
				if sol.Makespan != int64(2*m-1) {
					b.Fatalf("adversarial makespan %d", sol.Makespan)
				}
			}
		})
	}
}

// E2 — Theorem 2 ratio: M-PARTITION on random instances (quality is
// checked by the test suite; the bench tracks cost).
func BenchmarkE2PartitionRatio(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 200, M: 8, MaxSize: 100, Sizes: workload.SizeZipf,
		Placement: workload.PlaceRandom, Seed: 7,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.MPartition(in, 20, core.BinarySearch)
	}
}

// E3 — Theorem 1/3 O(n log n) scaling of GREEDY and M-PARTITION.
func BenchmarkE3Scaling(b *testing.B) {
	for _, n := range []int{1000, 8000, 64000} {
		in := workload.Generate(workload.Config{
			N: n, M: 32, Sizes: workload.SizeZipf, Placement: workload.PlaceSkewed, Seed: 5,
		})
		k := n / 10
		b.Run(fmt.Sprintf("greedy/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				greedy.Rebalance(in, k, greedy.OrderLargestFirst)
			}
		})
		b.Run(fmt.Sprintf("mpartition/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.MPartition(in, k, core.BinarySearch)
			}
		})
	}
}

// E4 — Theorem 4: PTAS runtime blow-up as ε shrinks.
func BenchmarkE4PTAS(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 8, M: 3, MaxSize: 30, Sizes: workload.SizeUniform,
		Placement: workload.PlaceRandom, Seed: 2,
	})
	for _, eps := range []float64{2.5, 1.5, 1.0} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ptas.Solve(context.Background(), in, 3, ptas.Options{Eps: eps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E5 — head-to-head cost of every algorithm on one instance.
func BenchmarkE5Comparison(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 12, M: 3, MaxSize: 30, Placement: workload.PlaceRandom, Seed: 11,
	})
	const k = 4
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.Solve(context.Background(), in, k, exact.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mpartition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MPartition(in, k, core.BinarySearch)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			greedy.Rebalance(in, k, greedy.OrderLargestFirst)
		}
	})
	b.Run("ptas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ptas.Solve(context.Background(), in, k, ptas.Options{Eps: 1.5}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gap.Rebalance(in, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E6 — §3.2 budget frontier: one full budget sweep per iteration.
func BenchmarkE6Budget(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 40, M: 5, MaxSize: 100, Sizes: workload.SizeZipf,
		Costs: workload.CostProportional, Placement: workload.PlaceSkewed, Seed: 21,
	})
	budgets := []int64{0, in.TotalSize() / 20, in.TotalSize() / 4, in.TotalSize()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, bud := range budgets {
			core.PartitionBudget(in, bud, core.BudgetOptions{})
		}
	}
}

// E7 — Shmoys–Tardos baseline cost (LP + rounding) vs M-PARTITION.
func BenchmarkE7GAPBaseline(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 60, M: 6, MaxSize: 200, Sizes: workload.SizeZipf,
		Placement: workload.PlaceSkewed, Seed: 9,
	})
	b.Run("gap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gap.Rebalance(in, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mpartition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MPartition(in, 10, core.BinarySearch)
		}
	})
}

// E8 — Theorem 5: exact move minimization over a PARTITION gadget.
func BenchmarkE8MoveMin(b *testing.B) {
	in, target := movemin.FromPartition([]int64{8, 7, 6, 5, 4})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := movemin.Exact(context.Background(), in, target, exact.Limits{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			movemin.Greedy(in, target)
		}
	})
}

// E9 — web farm simulation, one policy round-trip per iteration.
func BenchmarkE9WebFarm(b *testing.B) {
	cfg := sim.Config{
		Sites: 100, Servers: 8, Steps: 50, RebalanceEvery: 5,
		MovesPerRound: 5, FlashProb: 0.15, Seed: 42,
	}
	for _, p := range []sim.Policy{sim.PolicyGreedy{}, sim.PolicyMPartition{}, sim.PolicyFull{}} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E10 — Theorem 6/7 gadget construction and decision.
func BenchmarkE10Reductions(b *testing.B) {
	d := hardness.Planted(3, 3, 1)
	b.Run("constrained", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ci, _, err := constrained.FromThreeDM(d)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := constrained.Exact(context.Background(), ci, ci.Base.N(), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("conflict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ci, err := conflict.FromThreeDM(d)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := conflict.Feasible(ci, 0); !ok {
				b.Fatal("YES gadget infeasible")
			}
		}
	})
}

// E11 — ablation: M-PARTITION binary search vs the paper's threshold
// ladder.
func BenchmarkE11Ablation(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 400, M: 8, MaxSize: 500, Sizes: workload.SizeUniform,
		Placement: workload.PlaceSkewed, Seed: 3,
	})
	const k = 50
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MPartition(in, k, core.BinarySearch)
		}
	})
	b.Run("ladder", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MPartition(in, k, core.ThresholdScan)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MPartition(in, k, core.IncrementalScan)
		}
	})
}

// E12 — the makespan-vs-k frontier, computed in parallel.
func BenchmarkE12Frontier(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 2000, M: 16, Sizes: workload.SizeZipf, Placement: workload.PlaceSkewed, Seed: 12,
	})
	ks := []int{0, 10, 50, 200, 1000, 2000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Frontier(in, ks)
	}
}

// Worker scaling of the frontier sweep: the same k-sweep at pool sizes
// 1/2/4/8. On a multi-core box the workers=8 line should approach the
// core count in speedup over workers=1; on a single-core box (compare
// the recorded gomaxprocs) the lines collapse and only measure pool
// overhead. Results are byte-identical at every worker count.
func BenchmarkFrontierWorkers(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 2000, M: 16, Sizes: workload.SizeZipf, Placement: workload.PlaceSkewed, Seed: 12,
	})
	ks := []int{0, 5, 10, 25, 50, 100, 200, 400, 800, 1200, 1600, 2000}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				FrontierOpts(in, ks, FrontierOptions{Workers: w})
			}
		})
	}
}

// E13 — the LP relaxation lower bound at medium scale.
func BenchmarkE13LPBound(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 50, M: 6, MaxSize: 100, Sizes: workload.SizeZipf,
		Placement: workload.PlaceSkewed, Seed: 21,
	})
	for i := 0; i < b.N; i++ {
		if _, err := lpbound.Moves(in, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// E15 — the adversarial ratio hunt.
func BenchmarkE15AdversaryHunt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := adversary.Hunt(adversary.TargetMPartition, adversary.Config{Trials: 50, Seed: uint64(i)})
		if w.Ratio > 1.5 {
			b.Fatalf("bound crossed: %.4f", w.Ratio)
		}
	}
}

// E14 — the classical schedulers on the k = n regime.
func BenchmarkE14Scheduling(b *testing.B) {
	in := workload.Generate(workload.Config{
		N: 120, M: 8, MaxSize: 200, Sizes: workload.SizeUniform,
		Placement: workload.PlaceOneHot, Seed: 4,
	})
	sizes := scheduling.FromInstance(in)
	b.Run("lpt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scheduling.LPT(sizes, in.M)
		}
	})
	b.Run("multifit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scheduling.Multifit(sizes, in.M, 0)
		}
	})
	b.Run("hs-ptas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scheduling.DualPTAS(sizes, in.M, 0.2)
		}
	})
	b.Run("mpartition-kn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MPartition(in, in.N(), core.IncrementalScan)
		}
	})
}
