package rebalance

import (
	"repro/internal/instance"
	"repro/internal/lpbound"
	"repro/internal/scheduling"
)

// Lower bounds and the k = n scheduling baselines.

// LPBoundMoves returns an integer lower bound on the optimal makespan
// achievable with at most k relocations, from the LP relaxation of the
// assignment polytope with a fractional move budget. It scales to
// hundreds of jobs, far past the exact solver, and certifies solution
// quality at realistic sizes (experiment E13).
func LPBoundMoves(in *Instance, k int) (int64, error) {
	return lpbound.Moves(in, k)
}

// LPBoundBudget is LPBoundMoves for the arbitrary-cost budget model.
func LPBoundBudget(in *Instance, budget int64) (int64, error) {
	return lpbound.Budget(in, budget)
}

// ScheduleLPT schedules the instance's jobs from scratch (the k = n
// regime) with Graham's LPT rule — a (4/3 − 1/(3m))-approximation — and
// returns the solution relative to the instance's initial assignment.
func ScheduleLPT(in *Instance) Solution {
	assign, _ := scheduling.LPT(scheduling.FromInstance(in), in.M)
	return solutionOf(in, assign)
}

// ScheduleMultifit schedules from scratch with MULTIFIT
// (13/11-approximation).
func ScheduleMultifit(in *Instance) Solution {
	assign, _ := scheduling.Multifit(scheduling.FromInstance(in), in.M, 0)
	return solutionOf(in, assign)
}

// SchedulePTAS schedules from scratch with the Hochbaum–Shmoys dual
// approximation scheme: makespan at most (1+eps)·OPT over all
// assignments.
func SchedulePTAS(in *Instance, eps float64) Solution {
	assign, _ := scheduling.DualPTAS(scheduling.FromInstance(in), in.M, eps)
	return solutionOf(in, assign)
}

func solutionOf(in *Instance, assign []int) Solution {
	return instance.NewSolution(in, assign)
}
