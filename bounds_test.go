package rebalance

import "testing"

func TestLPBoundMovesAPI(t *testing.T) {
	in := Generate(WorkloadConfig{N: 10, M: 3, MaxSize: 25, Placement: PlaceRandom, Seed: 1})
	for _, k := range []int{0, 3, 10} {
		lb, err := LPBoundMoves(in, k)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Exact(in, k)
		if err != nil {
			t.Fatal(err)
		}
		if lb > opt.Makespan {
			t.Fatalf("k=%d: LP bound %d > OPT %d", k, lb, opt.Makespan)
		}
		sol := Partition(in, k)
		if sol.Makespan < lb {
			t.Fatalf("k=%d: solution %d below its own lower bound %d", k, sol.Makespan, lb)
		}
	}
}

func TestLPBoundBudgetAPI(t *testing.T) {
	in := Generate(WorkloadConfig{
		N: 8, M: 3, MaxSize: 20, Costs: CostRandom, Placement: PlaceRandom, Seed: 4,
	})
	lb, err := LPBoundBudget(in, 20)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ExactBudget(in, 20)
	if err != nil {
		t.Fatal(err)
	}
	if lb > opt.Makespan {
		t.Fatalf("LP bound %d > OPT %d", lb, opt.Makespan)
	}
}

func TestSchedulersAPI(t *testing.T) {
	in := Generate(WorkloadConfig{
		N: 40, M: 4, MaxSize: 50, Placement: PlaceOneHot, Seed: 2,
	})
	lb := in.LowerBound()
	for name, sol := range map[string]Solution{
		"lpt":      ScheduleLPT(in),
		"multifit": ScheduleMultifit(in),
		"hs-ptas":  SchedulePTAS(in, 0.2),
	} {
		if _, err := Check(in, sol); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Makespan < lb {
			t.Fatalf("%s: makespan %d below lower bound %d", name, sol.Makespan, lb)
		}
		// All three are well under 1.5× the packing bound on this easy
		// family (uniform sizes, plenty of jobs per machine).
		if 2*sol.Makespan > 3*lb {
			t.Fatalf("%s: makespan %d implausibly high vs bound %d", name, sol.Makespan, lb)
		}
	}
}

func TestSchedulePTASBeatsWorstCaseLPT(t *testing.T) {
	// The classic LPT-adversarial family via the public API.
	m := 4
	var sizes []int64
	for s := 2*m - 1; s > m; s-- {
		sizes = append(sizes, int64(s), int64(s))
	}
	sizes = append(sizes, int64(m), int64(m), int64(m))
	assign := make([]int, len(sizes))
	in := MustNew(m, sizes, nil, assign)
	lpt := ScheduleLPT(in)
	ptas := SchedulePTAS(in, 0.1)
	if ptas.Makespan >= lpt.Makespan {
		t.Fatalf("PTAS %d did not beat LPT %d on the adversarial family", ptas.Makespan, lpt.Makespan)
	}
}
