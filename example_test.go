package rebalance_test

import (
	"fmt"

	"repro"
)

// A small farm: server 0 is overloaded; two moves fix it.
func demoInstance() *rebalance.Instance {
	return rebalance.MustNew(3,
		[]int64{9, 7, 6, 5, 4, 3},
		nil,
		[]int{0, 0, 0, 1, 1, 2})
}

func ExamplePartition() {
	in := demoInstance()
	sol := rebalance.Partition(in, 2) // M-PARTITION, at most 2 moves
	fmt.Println(in.InitialMakespan(), "->", sol.Makespan, "with", sol.Moves, "moves")
	// Output: 22 -> 13 with 1 moves
}

func ExampleGreedy() {
	in := demoInstance()
	sol := rebalance.Greedy(in, 2)
	fmt.Println(sol.Makespan, sol.Moves)
	// Output: 13 1
}

func ExampleExact() {
	in := demoInstance()
	sol, err := rebalance.Exact(in, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(sol.Makespan)
	// Output: 13
}

func ExamplePartitionBudget() {
	// Moving the size-9 job costs 10; everything else costs 1. With a
	// budget of 2 the big job stays put — the result lands within the
	// 1.5·(1+ε) guarantee of the budget optimum (9).
	in := rebalance.MustNew(2,
		[]int64{9, 5, 4},
		[]int64{10, 1, 1},
		[]int{0, 0, 0})
	sol := rebalance.PartitionBudget(in, 2)
	fmt.Println(sol.Makespan, "cost", sol.MoveCost)
	// Output: 13 cost 1
}

func ExampleFrontier() {
	in := demoInstance()
	for _, pt := range rebalance.Frontier(in, []int{0, 1, 2}) {
		fmt.Println(pt.K, pt.Makespan)
	}
	// Output:
	// 0 22
	// 1 13
	// 2 13
}

func ExampleCheckMoves() {
	in := demoInstance()
	sol := rebalance.Partition(in, 2)
	fmt.Println(rebalance.CheckMoves(in, sol, 2) == nil)
	// Output: true
}

func ExampleMinMovesBicriteria() {
	// Three size-3 jobs on one of two processors: reaching load 6 takes
	// one move, and the bicriteria result uses no more.
	in := rebalance.MustNew(2, []int64{3, 3, 3}, nil, []int{0, 0, 0})
	sol, moves, ok := rebalance.MinMovesBicriteria(in, 6)
	fmt.Println(ok, moves, sol.Makespan)
	// Output: true 1 6
}

func ExampleNewBalancer() {
	b, _ := rebalance.NewBalancer(2)
	_ = b.Add(1, 8, 1, 0)
	_ = b.Add(2, 5, 1, 0)
	_ = b.Add(3, 4, 1, 0)
	moves := b.Rebalance(1)
	fmt.Println(len(moves), b.Makespan())
	// Output: 1 9
}

func ExampleGreedyTight() {
	// The Theorem 1 family: adversarial GREEDY reproduces the initial
	// configuration while the optimum is m.
	m := 8
	in := rebalance.GreedyTight(m)
	adv := rebalance.GreedyWithOrder(in, rebalance.GreedyTightK(m), rebalance.OrderSmallestFirst)
	fmt.Println(adv.Makespan, "vs optimal", m)
	// Output: 15 vs optimal 8
}
