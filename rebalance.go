// Package rebalance is a complete implementation of the algorithms in
// "The Load Rebalancing Problem" (Aggarwal, Motwani, Zhu — SPAA 2003):
// given jobs already assigned to processors, relocate at most k jobs
// (or jobs of total relocation cost at most a budget B) to minimize the
// makespan.
//
// The package exposes every algorithm the paper develops or cites:
//
//   - Greedy — the §2 variant of Graham's heuristic, a tight (2 − 1/m)-
//     approximation in O(n log n).
//   - Partition / PartitionBudget — the §3 PARTITION family: a
//     1.5-approximation for the k-move model (M-PARTITION, no knowledge
//     of OPT required) and its §3.2 extension to arbitrary relocation
//     costs under a budget.
//   - PTAS — the §4 approximation scheme: (1+ε)·OPT at cost ≤ B, for
//     small instances and moderate ε.
//   - Exact — branch-and-bound optimum for small instances.
//   - GAPBaseline — the Shmoys–Tardos generalized-assignment rounding
//     the paper compares against (2-approximation).
//
// Instances are built with New or generated with the Workload helpers;
// every solver returns a Solution whose metrics are recomputed from the
// returned assignment, and Check verifies any solution independently.
package rebalance

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gap"
	"repro/internal/greedy"
	"repro/internal/instance"
	"repro/internal/obs"
	"repro/internal/ptas"
	"repro/internal/verify"
)

// Job is a unit of work: a size (its load contribution) and the cost of
// relocating it away from its current processor.
type Job = instance.Job

// Instance is a load rebalancing instance: m processors, jobs, and the
// initial assignment.
type Instance = instance.Instance

// Solution is an assignment together with metrics recomputed over it.
type Solution = instance.Solution

// ErrInfeasible is returned when no solution satisfies the constraints.
var ErrInfeasible = instance.ErrInfeasible

// New builds a validated instance from job sizes, optional relocation
// costs (nil means unit costs), and the initial assignment.
func New(m int, sizes, costs []int64, assign []int) (*Instance, error) {
	return instance.New(m, sizes, costs, assign)
}

// MustNew is New, panicking on error; for literals in tests and examples.
func MustNew(m int, sizes, costs []int64, assign []int) *Instance {
	return instance.MustNew(m, sizes, costs, assign)
}

// GreedyOrder selects the placement order of GREEDY's second step; see
// the paper's Theorem 1 for why it matters.
type GreedyOrder = greedy.Order

// Placement orders for Greedy.
const (
	OrderRemoval       = greedy.OrderRemoval
	OrderLargestFirst  = greedy.OrderLargestFirst
	OrderSmallestFirst = greedy.OrderSmallestFirst
)

// Greedy runs the §2 GREEDY algorithm with move budget k: a tight
// (2 − 1/m)-approximation in O((n+k) log n) time.
func Greedy(in *Instance, k int) Solution {
	return greedy.Rebalance(in, k, greedy.OrderLargestFirst)
}

// GreedyWithOrder is Greedy with an explicit Step 2 placement order.
func GreedyWithOrder(in *Instance, k int, order GreedyOrder) Solution {
	return greedy.Rebalance(in, k, order)
}

// Partition runs §3.1 M-PARTITION with move budget k: a 1.5-approximation
// of the optimal makespan achievable with at most k moves, in
// O(n log n · log(makespan)) time. The returned solution never relocates
// more than k jobs.
func Partition(in *Instance, k int) Solution {
	return core.MPartition(in, k, core.BinarySearch)
}

// PartitionAt runs one §3 PARTITION pass against an explicit target
// value (a known or guessed OPT), returning feasibility, the removal
// count, and the solution.
func PartitionAt(in *Instance, target int64) core.Result {
	return core.Partition(in, target)
}

// PartitionBudget runs the §3.2 arbitrary-cost variant: relocation cost
// at most budget, makespan at most 1.5·(1+ε)·OPT(budget) where ε is the
// knapsack relaxation (0 whenever the exact knapsack DP is affordable).
func PartitionBudget(in *Instance, budget int64) Solution {
	return core.PartitionBudget(in, budget, core.BudgetOptions{})
}

// PTASOptions tunes the §4 approximation scheme.
type PTASOptions = ptas.Options

// PTAS runs the §4 approximation scheme: relocation cost at most budget
// and makespan at most (1+ε)·OPT(budget). Exponential in 1/ε; intended
// for small instances (see Options.MaxJobs). Use PTASCtx to bound the
// run with a deadline.
func PTAS(in *Instance, budget int64, opts PTASOptions) (Solution, error) {
	return ptas.Solve(context.Background(), in, budget, opts)
}

// PTASCtx is PTAS under a cancellable context: the guess ladder and
// every DP inner loop poll ctx and return ctx.Err() promptly when it
// fires.
func PTASCtx(ctx context.Context, in *Instance, budget int64, opts PTASOptions) (Solution, error) {
	return ptas.Solve(ctx, in, budget, opts)
}

// Exact solves the k-move problem optimally by branch and bound;
// exponential, intended for small instances. Bound the run with
// Solve(ctx, "exact", …) when a deadline is needed.
func Exact(in *Instance, k int) (Solution, error) {
	return engine.Solve(context.Background(), "exact", in, engine.Params{K: k})
}

// ExactBudget solves the budget problem optimally by branch and bound.
func ExactBudget(in *Instance, budget int64) (Solution, error) {
	return engine.Solve(context.Background(), "exact-budget", in, engine.Params{Budget: budget})
}

// GAPBaseline runs the Shmoys–Tardos 2-approximation through the §2
// reduction to generalized assignment: relocation cost at most budget,
// makespan at most 2·OPT(budget).
func GAPBaseline(in *Instance, budget int64) (Solution, error) {
	return gap.Rebalance(in, budget)
}

// Observability (see internal/obs and DESIGN.md §"Observability"): a
// Sink collects named counters/gauges/histograms and optionally streams
// structured events through a Tracer; pass it to the *Obs solver
// variants. A nil Sink disables instrumentation at the cost of one nil
// check per probe.
type (
	// Sink bundles a metric registry with an optional tracer.
	Sink = obs.Sink
	// Tracer receives structured solver events.
	Tracer = obs.Tracer
	// Snapshot is a frozen, JSON-serializable view of a Sink's metrics.
	Snapshot = obs.Snapshot
)

// NewSink returns a metrics-only observability sink.
func NewSink() *Sink { return obs.New() }

// NewTracingSink returns a sink that also streams JSON Lines events to
// w (one object per event; see DESIGN.md for the event taxonomy). Call
// TracerErr on the returned tracer after the run to surface write
// errors.
func NewTracingSink(w io.Writer) (*Sink, *obs.JSONLTracer) {
	tr := obs.NewJSONL(w)
	return obs.NewTracing(tr), tr
}

// GreedyObs is Greedy with observability.
func GreedyObs(in *Instance, k int, sink *Sink) Solution {
	return greedy.RebalanceObs(in, k, greedy.OrderLargestFirst, sink)
}

// PartitionObs is Partition with observability: every PARTITION probe
// of the search emits probe_start/removal/probe_result events and
// updates the core.* metrics.
func PartitionObs(in *Instance, k int, sink *Sink) Solution {
	return core.MPartitionObs(in, k, core.BinarySearch, sink)
}

// PartitionBudgetObs is PartitionBudget with observability.
func PartitionBudgetObs(in *Instance, budget int64, sink *Sink) Solution {
	return core.PartitionBudgetObs(in, budget, core.BudgetOptions{}, sink)
}

// GAPBaselineObs is GAPBaseline with observability (gap.* and lp.*
// metrics, gap_target and lp_solve events).
func GAPBaselineObs(in *Instance, budget int64, sink *Sink) (Solution, error) {
	return gap.RebalanceObs(in, budget, sink)
}

// Check independently verifies a solution against its instance,
// recomputing the makespan, move count and move cost.
func Check(in *Instance, sol Solution) (verify.Report, error) {
	return verify.Solution(in, sol.Assign)
}

// CheckMoves verifies a solution and its k-move constraint.
func CheckMoves(in *Instance, sol Solution, k int) error {
	_, err := verify.WithinMoves(in, sol.Assign, k)
	return err
}

// CheckBudget verifies a solution and its cost budget.
func CheckBudget(in *Instance, sol Solution, budget int64) error {
	_, err := verify.WithinBudget(in, sol.Assign, budget)
	return err
}
