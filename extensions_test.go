package rebalance

import (
	"errors"
	"testing"
)

func TestWorkloadAPIGenerate(t *testing.T) {
	in := Generate(WorkloadConfig{
		N: 30, M: 4, Sizes: SizeZipf, Placement: PlaceSkewed, Costs: CostProportional, Seed: 2,
	})
	if in.N() != 30 || in.M != 4 {
		t.Fatalf("shape %s", in)
	}
	// Determinism through the public API.
	in2 := Generate(WorkloadConfig{
		N: 30, M: 4, Sizes: SizeZipf, Placement: PlaceSkewed, Costs: CostProportional, Seed: 2,
	})
	for j := range in.Jobs {
		if in.Jobs[j] != in2.Jobs[j] || in.Assign[j] != in2.Assign[j] {
			t.Fatal("non-deterministic generation")
		}
	}
}

func TestTightInstancesAPI(t *testing.T) {
	m := 6
	in := GreedyTight(m)
	adv := GreedyWithOrder(in, GreedyTightK(m), OrderSmallestFirst)
	if adv.Makespan != int64(2*m-1) {
		t.Fatalf("adversarial makespan %d", adv.Makespan)
	}
	pt := PartitionTight()
	sol := Partition(pt, 1)
	if sol.Makespan != 3 {
		t.Fatalf("tight PARTITION makespan %d, want 3", sol.Makespan)
	}
}

func TestPartitionWithModeAgree(t *testing.T) {
	in := Generate(WorkloadConfig{N: 40, M: 4, Seed: 8, Placement: PlaceSkewed})
	a := PartitionWithMode(in, 5, BinarySearch)
	b := PartitionWithMode(in, 5, ThresholdScan)
	if err := CheckMoves(in, a, 5); err != nil {
		t.Fatal(err)
	}
	if err := CheckMoves(in, b, 5); err != nil {
		t.Fatal(err)
	}
}

func TestMinMovesAPI(t *testing.T) {
	in := MustNew(2, []int64{3, 3, 3}, nil, []int{0, 0, 0})
	k, sol, err := MinMoves(in, 6)
	if err != nil || k != 1 || sol.Makespan > 6 {
		t.Fatalf("k=%d err=%v sol=%+v", k, err, sol)
	}
	if _, _, err := MinMoves(in, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMinMovesBicriteriaAPI(t *testing.T) {
	in := MustNew(2, []int64{3, 3, 3}, nil, []int{0, 0, 0})
	sol, moves, ok := MinMovesBicriteria(in, 6)
	if !ok {
		t.Fatal("reachable target rejected")
	}
	if moves > 1 {
		t.Fatalf("moves %d exceed exact minimum 1", moves)
	}
	if sol.Makespan > 9 {
		t.Fatalf("makespan %d > 1.5·6", sol.Makespan)
	}
}

func TestMoveMinGadgetAPI(t *testing.T) {
	in, target := MoveMinGadget([]int64{5, 4, 3, 2})
	if target != 7 || in.M != 2 {
		t.Fatalf("gadget target=%d m=%d", target, in.M)
	}
	if _, _, err := MinMoves(in, target); err != nil {
		t.Fatalf("partitionable gadget infeasible: %v", err)
	}
}

func TestConstrainedAPIs(t *testing.T) {
	in := MustNew(2, []int64{4, 3, 2}, nil, []int{0, 0, 0})
	ci := &ConstrainedInstance{Base: in, Allowed: [][]int{{0}, nil, nil}}
	sol, err := ConstrainedExact(ci, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Makespan != 5 {
		t.Fatalf("makespan %d, want 5", sol.Makespan)
	}
	g := ConstrainedGreedy(ci)
	if g.Makespan < sol.Makespan {
		t.Fatal("greedy beat exact")
	}
	bl, err := ConstrainedBaseline(in, ci.Allowed, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Makespan > 2*sol.Makespan {
		t.Fatalf("baseline %d > 2·OPT", bl.Makespan)
	}
}

func TestConflictAPIs(t *testing.T) {
	in := MustNew(2, []int64{1, 1, 1}, nil, []int{0, 0, 0})
	ci := &ConflictInstance{Base: in, Conflicts: [][2]int{{0, 1}}}
	if _, ok := ConflictFeasible(ci); !ok {
		t.Fatal("feasible conflict instance rejected")
	}
	sol, err := ConflictMinMakespan(ci)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Makespan != 2 {
		t.Fatalf("makespan %d, want 2", sol.Makespan)
	}
}

func TestGadgetAPIs(t *testing.T) {
	yes := &ThreeDM{N: 1, Triples: []ThreeDMTriple{{A: 0, B: 0, C: 0}}}
	cg, target, err := ConstrainedGadget(yes)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ConstrainedExact(cg, cg.Base.N())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Makespan != target {
		t.Fatalf("YES gadget makespan %d, want %d", sol.Makespan, target)
	}
	fg, err := ConflictGadget(yes)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ConflictFeasible(fg); !ok {
		t.Fatal("YES conflict gadget infeasible")
	}
}

func TestBalancerAPI(t *testing.T) {
	b, err := NewBalancer(3)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 20; id++ {
		if err := b.Add(id, int64(1+id%7), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := b.Makespan()
	moves := b.Rebalance(6)
	if len(moves) > 6 || b.Makespan() >= before {
		t.Fatalf("rebalance: %d moves, %d -> %d", len(moves), before, b.Makespan())
	}
}
