// Webfarm: the paper's motivating scenario. A farm of web servers hosts
// websites whose traffic drifts and occasionally spikes (flash crowds).
// Every few steps a rebalancer may migrate at most k sites. This example
// replays identical traffic under four policies and reports how much of
// the unlimited-migration benefit a small budget already captures.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
)

func main() {
	cfg := sim.Config{
		Sites:          300,
		Servers:        12,
		Steps:          400,
		RebalanceEvery: 5,
		MovesPerRound:  10, // k: at most 10 website migrations per round
		Drift:          0.06,
		FlashProb:      0.2,
		FlashFactor:    10,
		Seed:           2003, // SPAA 2003
	}
	fmt.Printf("web farm: %d sites on %d servers, %d steps, k=%d migrations every %d steps\n\n",
		cfg.Sites, cfg.Servers, cfg.Steps, cfg.MovesPerRound, cfg.RebalanceEvery)

	policies := []sim.Policy{
		sim.PolicyNone{},       // never migrate
		sim.PolicyGreedy{},     // §2 GREEDY with budget k
		sim.PolicyMPartition{}, // §3 M-PARTITION with budget k
		sim.PolicyFull{},       // unlimited migrations (upper envelope)
	}
	fmt.Printf("%-12s %14s %14s %12s %12s\n", "policy", "peak load", "mean load", "imbalance", "migrations")
	var none, full, budgeted sim.Metrics
	for _, p := range policies {
		m, err := sim.Run(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %14d %14.0f %12.3f %12d\n",
			m.Policy, m.PeakMakespan, m.MeanMakespan, m.MeanImbalance, m.TotalMoves)
		switch p.(type) {
		case sim.PolicyNone:
			none = m
		case sim.PolicyFull:
			full = m
		case sim.PolicyMPartition:
			budgeted = m
		}
	}

	gain := none.MeanMakespan - full.MeanMakespan
	captured := none.MeanMakespan - budgeted.MeanMakespan
	if gain > 0 {
		fmt.Printf("\nbudgeted M-PARTITION captured %.0f%% of the unlimited-migration benefit using %d/%d of its migrations\n",
			100*captured/gain, budgeted.TotalMoves, full.TotalMoves)
	}
}
