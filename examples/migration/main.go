// Migration: the process-migration setting from the paper's
// introduction (Rudolph et al. migrate only a few processes; Harchol-
// Balter & Downey exploit process lifetimes). Processes arrive on the
// least-loaded CPU, grow or shrink while they run, and exit; every tick
// the scheduler may migrate at most k processes. Uses the online
// Balancer, the incremental front-end to M-PARTITION.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	const (
		cpus     = 8
		ticks    = 200
		k        = 3 // migrations allowed per tick
		arrivals = 4 // new processes per tick
	)
	b, err := rebalance.NewBalancer(cpus)
	if err != nil {
		log.Fatal(err)
	}
	rng := workload.NewRNG(1994) // Rudolph et al.'s era

	nextPID := 0
	var live []int
	var peak, migrations int
	var sumMakespan float64
	for tick := 0; tick < ticks; tick++ {
		// Arrivals: heavy-tailed CPU demand, placed on the least-loaded
		// CPU (Graham-style, no migration cost yet).
		for a := 0; a < arrivals; a++ {
			size := 1 + rng.Int63n(100)
			if rng.Float64() < 0.1 {
				size *= 20 // occasional CPU hog
			}
			if err := b.Add(nextPID, size, 1, -1); err != nil {
				log.Fatal(err)
			}
			live = append(live, nextPID)
			nextPID++
		}
		// Lifetimes: ~5% of processes exit per tick; the rest drift.
		for i := 0; i < len(live); {
			pid := live[i]
			if rng.Float64() < 0.05 {
				if err := b.Remove(pid); err != nil {
					log.Fatal(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			i++
		}

		moves := b.Rebalance(k)
		migrations += len(moves)
		ms := int(b.Makespan())
		if ms > peak {
			peak = ms
		}
		sumMakespan += float64(ms)
	}

	in, _ := b.Snapshot()
	fmt.Printf("after %d ticks: %d live processes on %d CPUs\n", ticks, b.Len(), cpus)
	fmt.Printf("makespan now %d (lower bound %d), peak %d, mean %.0f\n",
		b.Makespan(), in.LowerBound(), peak, sumMakespan/ticks)
	fmt.Printf("migrations: %d total (budget allowed %d)\n", migrations, ticks*k)
	fmt.Printf("balance: loads %v\n", b.Loads())
	fmt.Printf("makespan within %.2fx of the packing lower bound (M-PARTITION guarantees 1.5x\n",
		float64(b.Makespan())/float64(in.LowerBound()))
	fmt.Println("of the best k-move rebalancing while spending very few migrations — Lemma 4)")
}
