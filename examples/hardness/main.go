// Hardness: builds the §5 reduction gadgets and shows the decision gaps
// that make move minimization, constrained rebalancing and conflict
// scheduling inapproximable.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/conflict"
	"repro/internal/constrained"
	"repro/internal/exact"
	"repro/internal/hardness"
	"repro/internal/instance"
	"repro/internal/movemin"
)

func main() {
	// Theorem 5 — move minimization from number PARTITION.
	fmt.Println("Theorem 5: move minimization encodes PARTITION")
	for _, weights := range [][]int64{{5, 4, 3, 2}, {7, 1, 1, 1}} {
		in, target := movemin.FromPartition(weights)
		k, _, err := movemin.Exact(context.Background(), in, target, exact.Limits{})
		switch {
		case err == nil:
			fmt.Printf("  weights %v, target %d: feasible with %d moves (PARTITION: yes)\n", weights, target, k)
		case errors.Is(err, instance.ErrInfeasible):
			fmt.Printf("  weights %v, target %d: infeasible (PARTITION: no)\n", weights, target)
		default:
			log.Fatal(err)
		}
	}

	// A matchable and an unmatchable 3DM instance.
	yes := hardness.Planted(3, 3, 7)
	no := &hardness.ThreeDM{N: 2, Triples: []hardness.Triple{
		{A: 0, B: 0, C: 0}, {A: 1, B: 0, C: 1}, {A: 1, B: 1, C: 0},
	}}

	// Corollary 1 — constrained load rebalancing from 3DM.
	fmt.Println("\nCorollary 1: constrained rebalancing gap at 3/2")
	for _, d := range []*hardness.ThreeDM{yes, no} {
		ci, target, err := constrained.FromThreeDM(d)
		if err != nil {
			log.Fatal(err)
		}
		sol, err := constrained.Exact(context.Background(), ci, ci.Base.N(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  3DM matchable=%v: target %d, best achievable %d (gap %.2fx)\n",
			d.HasMatching(), target, sol.Makespan, float64(sol.Makespan)/float64(target))
	}

	// Theorem 7 — conflict scheduling from 3DM.
	fmt.Println("\nTheorem 7: conflict scheduling feasibility is NP-hard")
	for _, d := range []*hardness.ThreeDM{yes, no} {
		ci, err := conflict.FromThreeDM(d)
		if err != nil {
			log.Fatal(err)
		}
		_, ok := conflict.Feasible(ci, 0)
		fmt.Printf("  3DM matchable=%v: conflict-respecting schedule exists=%v\n", d.HasMatching(), ok)
	}
}
