// Quickstart: build a small instance by hand, rebalance it with each
// algorithm under a 2-move budget, and print what happened.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Three servers; server 0 is overloaded.
	//   server 0: jobs of size 9, 7, 6   (load 22)
	//   server 1: jobs of size 5, 4      (load  9)
	//   server 2: job  of size 3         (load  3)
	in := rebalance.MustNew(3,
		[]int64{9, 7, 6, 5, 4, 3},
		nil, // unit relocation costs
		[]int{0, 0, 0, 1, 1, 2})

	const k = 2
	fmt.Printf("initial makespan %d, lower bound %d, move budget %d\n\n",
		in.InitialMakespan(), in.LowerBound(), k)

	opt, err := rebalance.Exact(in, k)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, sol rebalance.Solution) {
		if err := rebalance.CheckMoves(in, sol, k); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-12s makespan %2d  moves %d  (ratio %.3f vs OPT %d)\n",
			name, sol.Makespan, sol.Moves, float64(sol.Makespan)/float64(opt.Makespan), opt.Makespan)
	}

	show("exact", opt)
	show("mpartition", rebalance.Partition(in, k)) // ≤ 1.5·OPT, §3
	show("greedy", rebalance.Greedy(in, k))        // ≤ (2−1/m)·OPT, §2

	ptas, err := rebalance.PTAS(in, k, rebalance.PTASOptions{Eps: 0.75})
	if err != nil {
		log.Fatal(err)
	}
	show("ptas(0.75)", ptas) // ≤ (1+ε)·OPT, §4

	gap, err := rebalance.GAPBaseline(in, k)
	if err != nil {
		log.Fatal(err)
	}
	show("gap", gap) // ≤ 2·OPT, Shmoys–Tardos via the §2 reduction
}
