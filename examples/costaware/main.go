// Costaware: the §3.2 arbitrary-cost model. Migrating a website is not
// free — moving a big site (lots of state) costs more than a small one.
// This example sweeps the relocation budget and prints the
// makespan-vs-budget frontier for the paper's algorithm and the
// Shmoys–Tardos baseline, under two cost models.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	for _, cm := range []workload.CostModel{workload.CostProportional, workload.CostAntiCorrelated} {
		in := workload.Generate(workload.Config{
			N: 60, M: 6, MaxSize: 100,
			Sizes:     workload.SizeZipf,
			Costs:     cm,
			Placement: workload.PlaceSkewed,
			Seed:      17,
		})
		fmt.Printf("cost model %q: %s\n", cm, in)
		fmt.Printf("%10s %22s %16s\n", "budget", "partition-budget", "gap-baseline")
		maxB := in.TotalSize()
		for _, pct := range []int64{0, 2, 5, 10, 20, 50, 100} {
			b := maxB * pct / 100
			pb := rebalance.PartitionBudget(in, b)
			if err := rebalance.CheckBudget(in, pb, b); err != nil {
				log.Fatal(err)
			}
			gb, err := rebalance.GAPBaseline(in, b)
			if err != nil {
				log.Fatal(err)
			}
			if err := rebalance.CheckBudget(in, gb, b); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%9d%% %12d (cost %4d) %8d (cost %4d)\n",
				pct, pb.Makespan, pb.MoveCost, gb.Makespan, gb.MoveCost)
		}
		fmt.Println()
	}
}
