package rebalance

import (
	"os"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestREADMETablesMatchRegistry pins the README's CLI documentation to
// the solver registry: the flag table and the algorithm table embedded
// in README.md must byte-for-byte match what internal/engine generates,
// so registering, renaming, or re-flagging a solver without updating
// the docs fails CI. Regenerate with the marked tables' generator
// output (engine.MarkdownFlagTable / engine.MarkdownAlgorithmTable).
func TestREADMETablesMatchRegistry(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(readme)
	for _, table := range []struct {
		name, want string
	}{
		{"flag table", engine.MarkdownFlagTable()},
		{"algorithm table", engine.MarkdownAlgorithmTable()},
	} {
		if !strings.Contains(doc, table.want) {
			t.Errorf("README.md %s is out of sync with the internal/engine registry; regenerate it:\n%s",
				table.name, table.want)
		}
	}
}
