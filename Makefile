GO ?= go

.PHONY: build test short race vet bench bench-json ci check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json runs the benchmark suite and records the parsed results —
# plus the goos/goarch/gomaxprocs header that makes the parallel numbers
# interpretable — in BENCH.json.
bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson -json BENCH.json

# ci is the single gate: static checks, the full suite, and the race
# detector over the concurrency-bearing packages (the worker pool and
# the shared metric sinks; a full -race sweep is the slower `race`).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/par ./internal/obs

check: vet test race

clean:
	$(GO) clean ./...
