GO ?= go

.PHONY: build test short race race-fast vet bench bench-json ci check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# race-fast covers only the concurrency-bearing packages (the worker
# pool and the shared metric sinks) — the quick pre-push check; `ci`
# and `race` sweep the whole module.
race-fast:
	$(GO) test -race ./internal/par ./internal/obs

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json runs the benchmark suite and records the parsed results —
# plus the goos/goarch/gomaxprocs header that makes the parallel numbers
# interpretable — in BENCH.json.
bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson -json BENCH.json

# ci is the single gate: static checks, the full suite, and the race
# detector over the whole module — cancellation now threads contexts
# through every solver's hot loop, so data races can hide anywhere a
# deadline fires mid-search (`race-fast` is the quick narrow subset).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./...

check: vet test race

clean:
	$(GO) clean ./...
