GO ?= go

.PHONY: build test short race race-fast vet bench bench-json serve loadtest lint-metrics metrics-smoke fuzz-short ci check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# race-fast covers only the concurrency-bearing packages (the worker
# pool, the shared metric sinks, the engine registry, the solution
# cache's single-flight layer, and the serving layer) — the quick
# pre-push check; `ci` and `race` sweep the module.
race-fast:
	$(GO) test -race ./internal/par ./internal/obs ./internal/engine ./internal/cache ./internal/server/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json runs the benchmark suite and records the parsed results —
# plus the goos/goarch/gomaxprocs header that makes the parallel numbers
# interpretable — in BENCH.json.
bench-json:
	$(GO) test -bench=. -benchmem -run=^$$ . | $(GO) run ./cmd/benchjson -json BENCH.json

# serve runs the solve daemon on :8080 with debug endpoints on :8081;
# loadtest points the load generator at it (override with make
# loadtest LOADGEN_FLAGS="-alg ptas -budget 500 -n 100").
SERVE_FLAGS ?= -addr localhost:8080 -debug-addr localhost:8081
LOADGEN_FLAGS ?= -addr localhost:8080 -alg mpartition -k 10 -n 200 -c 8 -dup 0.3
serve:
	$(GO) run ./cmd/rebalanced $(SERVE_FLAGS)

# loadtest reports throughput, latency percentiles, cache hit rate, and
# the per-phase (queue/cache/solve) breakdown from the responses'
# timing fields.
loadtest:
	$(GO) run ./cmd/loadgen $(LOADGEN_FLAGS)

# lint-metrics cross-checks every metric name the code can emit against
# docs/metrics.md (fails on drift in either direction).
lint-metrics:
	$(GO) test -run TestMetricsDocMatchesSource -count=1 .

# metrics-smoke boots the daemon on a scratch port, issues one solve,
# scrapes /metrics, and verifies the Prometheus exposition parses and
# covers the serving and runtime families (plus /version and
# /debug/traces), then shuts the daemon down.
SMOKE_ADDR ?= localhost:18080
metrics-smoke:
	@tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/rebalanced ./cmd/metricsmoke || exit 1; \
	$$tmp/rebalanced -addr $(SMOKE_ADDR) -drain 2s & \
	pid=$$!; \
	$$tmp/metricsmoke -addr $(SMOKE_ADDR); \
	status=$$?; \
	kill $$pid 2>/dev/null; \
	wait $$pid 2>/dev/null; \
	exit $$status

# fuzz-short gives each native fuzz target a ~10s budget on top of its
# committed seed corpus: long enough to shake out encoding and
# status-mapping regressions, short enough for every CI run. Dedicated
# long fuzz sessions just raise -fuzztime.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzMPartitionInvariants -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzPartitionBudgetInvariants -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cache -run '^$$' -fuzz FuzzCanonicalHash -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz FuzzServerSolve -fuzztime $(FUZZTIME)

# ci is the single gate: static checks, the full suite, and the race
# detector over the whole module — which includes the server's admission
# queue, drain path, and concurrent engine dispatch — cancellation
# threads contexts through every solver's hot loop, so data races can
# hide anywhere a deadline fires mid-search (`race-fast` is the quick
# narrow subset).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(MAKE) lint-metrics
	$(GO) test ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-short

check: vet test race

clean:
	$(GO) clean ./...
