GO ?= go

.PHONY: build test short race race-fast vet bench bench-json bench-diff bench-profile serve loadtest lint-metrics metrics-smoke sim-validate hypotheses hypotheses-check fuzz-short ci check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# race-fast covers only the concurrency-bearing packages (the worker
# pool, the shared metric sinks, the engine registry, the solution
# cache's single-flight layer, the dispatch core and its session table,
# the hash ring, the routing tier, the session and online layers, and
# the serving layer) — the quick pre-push check; `ci` and `race` sweep
# the module.
race-fast:
	$(GO) test -race ./internal/par ./internal/obs ./internal/engine ./internal/cache ./internal/dispatch ./internal/ring ./internal/router ./internal/session ./internal/online ./internal/server/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-json runs the benchmark suite — the experiment benchmarks in the
# module root plus the serving-path benchmarks — and records the parsed
# results, with the goos/goarch/gomaxprocs/numcpu header that makes the
# numbers interpretable, in BENCH.json. Every pass uses the same
# $(BENCHTIME) as bench-diff so baseline and gate samples are drawn
# under identical conditions (iteration count affects per-op time via
# cache warmth), and the gated set gets four extra passes so the
# baseline's per-name median (what bench-diff compares against) is
# taken over five repeats.
bench-json:
	( $(GO) test -bench=. -benchmem -benchtime $(BENCHTIME) -run=^$$ . ./internal/server ./internal/session ; \
	  $(GO) test -bench='$(BENCH_GATE_RE)' -benchmem -benchtime $(BENCHTIME) -count 4 -run=^$$ . ./internal/server ./internal/session ) \
	| $(GO) run ./cmd/benchjson -json BENCH.json

# bench-diff is the performance regression gate: it re-runs the curated
# benchmark set (solver kernels plus the serving path) and compares
# against the committed BENCH.json. Fails on >$(BENCH_TOLERANCE)
# ns/op drift (same-environment baselines only; serving-path benchmarks
# are alloc-only — see benchjson.DefaultGate) or ANY allocs/op
# increase. Each benchmark runs $(BENCH_COUNT) times and the comparison
# takes the fresh run's per-name minimum against the baseline's median
# ("can the code still reach its typical recorded speed?"), with
# BenchmarkCalibration (fixed pure-CPU work) riding along so benchdiff
# can scale the limits by the ambient machine-speed drift. BENCHTIME is
# time-based (not -benchtime Nx) so every sample averages over a full
# second of work — fixed low iteration counts make per-sample noise
# swamp the tolerance. The tolerance here is sized to this
# container's measured noise floor (per-benchmark spread of 25–75%
# between back-to-back repeats even after calibration); on quiet
# dedicated hardware run with BENCH_TOLERANCE=0.10, the tool default.
BENCHTIME ?= 1s
BENCH_COUNT ?= 5
BENCH_TOLERANCE ?= 0.20
BENCH_GATE_RE = ^(BenchmarkCalibration|BenchmarkE2PartitionRatio|BenchmarkE3Scaling|BenchmarkE4PTAS|BenchmarkE11Ablation|BenchmarkServerSolveHit|BenchmarkServerSolveMiss|BenchmarkServerBatch|BenchmarkSessionDelta|BenchmarkSessionColdResolve)$$
bench-diff:
	$(GO) test -bench='$(BENCH_GATE_RE)' -benchmem -benchtime $(BENCHTIME) -count $(BENCH_COUNT) -run=^$$ . ./internal/server ./internal/session | $(GO) run ./cmd/benchdiff -baseline BENCH.json -tolerance $(BENCH_TOLERANCE)

# bench-profile captures CPU and allocation profiles for the serving mix
# benchmark (the loadgen-shaped 70/30 hit/miss traffic); inspect with
# `go tool pprof cpu.prof` / `go tool pprof -alloc_space mem.prof`.
PROFILE_BENCHTIME ?= 5000x
bench-profile:
	$(GO) test -bench '^BenchmarkServerLoadMix$$' -benchmem -benchtime $(PROFILE_BENCHTIME) -run=^$$ \
		-cpuprofile cpu.prof -memprofile mem.prof -o server.bench.test ./internal/server
	@echo "profiles written: cpu.prof mem.prof (binary: server.bench.test)"

# serve runs the solve daemon on :8080 with debug endpoints on :8081;
# loadtest points the load generator at it (override with make
# loadtest LOADGEN_FLAGS="-alg ptas -budget 500 -n 100").
SERVE_FLAGS ?= -addr localhost:8080 -debug-addr localhost:8081
LOADGEN_FLAGS ?= -addr localhost:8080 -alg mpartition -k 10 -n 200 -c 8 -dup 0.3
serve:
	$(GO) run ./cmd/rebalanced $(SERVE_FLAGS)

# loadtest reports throughput, latency percentiles, cache hit rate, and
# the per-phase (queue/cache/solve) breakdown from the responses'
# timing fields.
loadtest:
	$(GO) run ./cmd/loadgen $(LOADGEN_FLAGS)

# lint-metrics cross-checks every metric name the code can emit against
# docs/metrics.md (fails on drift in either direction).
lint-metrics:
	$(GO) test -run TestMetricsDocMatchesSource -count=1 .

# metrics-smoke boots the daemon on a scratch port, issues one solve,
# scrapes /metrics, and verifies the Prometheus exposition parses and
# covers the serving and runtime families (plus /version and
# /debug/traces), then shuts the daemon down.
SMOKE_ADDR ?= localhost:18080
metrics-smoke:
	@tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/rebalanced ./cmd/metricsmoke || exit 1; \
	$$tmp/rebalanced -addr $(SMOKE_ADDR) -drain 2s & \
	pid=$$!; \
	$$tmp/metricsmoke -addr $(SMOKE_ADDR); \
	status=$$?; \
	kill $$pid 2>/dev/null; \
	wait $$pid 2>/dev/null; \
	exit $$status

# sim-validate closes the loop between the discrete-event fleet
# simulator (internal/des) and the real daemon: boot one shard, drive a
# Zipf-keyed burst through it, replay the identical key sequence through
# an equivalent simulated scenario, and fail if the simulated cache hit
# rate drifts from the real /metrics scrape by more than the tolerance.
SIMV_ADDR ?= localhost:18090
sim-validate:
	@tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ ./cmd/rebalanced ./cmd/simvalidate || exit 1; \
	$$tmp/rebalanced -addr $(SIMV_ADDR) -drain 2s & \
	pid=$$!; \
	$$tmp/simvalidate -addr $(SIMV_ADDR) -n 2000 -keys 256 -zipf 1.1; \
	status=$$?; \
	kill $$pid 2>/dev/null; \
	wait $$pid 2>/dev/null; \
	exit $$status

# hypotheses runs the simulation lab (cmd/fleetsim over hypotheses/*.json)
# and rewrites the committed result artifacts; hypotheses-check re-runs
# every experiment and fails if any regenerated artifact differs from
# the committed one by a single byte — the simulator is pure virtual
# time, so even the multi-seed statistical experiments must reproduce
# exactly. ci runs the check; run `make hypotheses` and commit after
# changing the simulator or a spec.
hypotheses:
	$(GO) run ./cmd/fleetsim -dir hypotheses

hypotheses-check:
	$(GO) run ./cmd/fleetsim -dir hypotheses -check

# fuzz-short gives each native fuzz target a ~10s budget on top of its
# committed seed corpus: long enough to shake out encoding and
# status-mapping regressions, short enough for every CI run. Dedicated
# long fuzz sessions just raise -fuzztime.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzMPartitionInvariants -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzPartitionBudgetInvariants -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cache -run '^$$' -fuzz FuzzCanonicalHash -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz FuzzServerSolve -fuzztime $(FUZZTIME)
	$(GO) test ./internal/session -run '^$$' -fuzz FuzzSessionDeltas -fuzztime $(FUZZTIME)

# ci is the single gate: static checks, the full suite, and the race
# detector over the whole module — which includes the server's admission
# queue, drain path, and concurrent engine dispatch — cancellation
# threads contexts through every solver's hot loop, so data races can
# hide anywhere a deadline fires mid-search (`race-fast` is the quick
# narrow subset).
ci:
	$(GO) vet ./...
	$(GO) build ./...
	$(MAKE) lint-metrics
	$(GO) test ./...
	$(GO) test -race ./...
	$(MAKE) bench-diff
	$(MAKE) hypotheses-check
	$(MAKE) fuzz-short

check: vet test race

clean:
	$(GO) clean ./...
	rm -f cpu.prof mem.prof server.bench.test
