GO ?= go

.PHONY: build test short race vet bench check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

check: vet test race

clean:
	$(GO) clean ./...
